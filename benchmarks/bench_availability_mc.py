"""Monte-Carlo availability: the work-lost distribution vs MTBF × interval.

The paper's checkpointing argument (and Garg et al.'s optimal-interval
analysis) is statistical: how much work does a failure cost *in
expectation and in the tail*, as a function of how often the machine
fails (MTBF) and how often the job checkpoints?  A one-seed bench
cannot answer that; this one runs a fleet.

Each cell is one seeded trial: a token-ring job under
``ManaConfig.fault_tolerant()`` checkpointing every ``interval_frac ×
T`` virtual seconds (T = fault-free runtime), with a failure time drawn
from an exponential distribution of mean ``mtbf_frac × T`` and a
uniform victim rank.  Trials report ``recovered`` (rollback-restart
from the last durable epoch, losing ``work_lost``), ``censored`` (the
drawn failure lands after the job finished — nothing lost), or ``lost``
(the failure precedes the first durable checkpoint; the whole run to
that point is forfeit).  The default grid is 4 MTBFs × 3 intervals × 20
seeds = 240 cells (``REPRO_BENCH_SCALE=full``: 50 seeds, 600 cells),
fanned across all cores by ``repro.campaign`` with crash-isolated
workers and a resumable journal — re-runs are cache hits.

Expected shape: mean and p95 work lost grow as checkpoints get rarer
(larger interval) and as failures get more frequent (smaller MTBF);
with a generous MTBF most trials are censored.

``--smoke`` runs a reduced grid on 2 workers with two deliberately
crashing cells injected, and asserts the campaign itself survives them
with every availability cell finishing ok — the orchestration-layer
fault-tolerance story, demonstrated by the same subsystem that
measures the simulated one.
"""

import shutil

from repro.bench import BenchScale, current_scale, save_result, write_bench_json
from repro.campaign import (
    CampaignStore,
    aggregate_store,
    run_campaign,
    spec_availability_mc,
)
from repro.util.tables import AsciiTable

#: default campaign directory (journal + manifest; safe to delete)
DEFAULT_DIR = ".campaigns/availability_mc"


def build_spec(smoke: bool = False, seeds=None):
    if smoke:
        return spec_availability_mc(
            seeds=seeds or 3, mtbf_fracs=(1.0, 4.0),
            interval_fracs=(0.25,), crash_cells=2,
        )
    if seeds is None:
        seeds = 50 if current_scale() is BenchScale.FULL else 20
    return spec_availability_mc(seeds=seeds)


def prepare_dir(spec, root) -> CampaignStore:
    """Reuse the campaign directory when it matches this spec (resumed
    runs are cache hits); wipe it when the grid changed."""
    store = CampaignStore(root)
    if store.exists():
        try:
            store.check_spec(spec)
        except Exception:
            shutil.rmtree(store.root)
    return store


def sweep(smoke: bool = False, workers=None, root=DEFAULT_DIR,
          progress=None) -> dict:
    spec = build_spec(smoke=smoke)
    store = prepare_dir(spec, root)
    run = run_campaign(spec, store.root, workers=workers,
                       on_existing="resume", progress=progress)
    summary = aggregate_store(store)
    summary["campaign_dir"] = str(store.root)
    summary["run"] = {"total": run.total, "ran": run.ran,
                      "skipped": run.skipped, "retries": run.retries,
                      "counts": run.counts}
    return summary


def render(summary: dict) -> str:
    t = AsciiTable(
        ["MTBF (×T)", "interval (×T)", "cells", "recovered", "censored",
         "lost", "work lost mean (s)", "p50", "p95"],
        title=(
            "Monte-Carlo availability — work-lost distribution vs MTBF "
            f"× checkpoint interval ({summary['cells_total']} cells)"
        ),
    )
    for g in summary["groups"]:
        outcomes = g["categories"].get("outcome", {})
        wl = g["metrics"].get("work_lost")
        t.add_row([
            g["key"]["mtbf_frac"],
            g["key"]["interval_frac"],
            g["cells"],
            outcomes.get("recovered", 0),
            outcomes.get("censored", 0),
            outcomes.get("lost", 0),
            f"{wl['mean']:.4f}" if wl else "-",
            f"{wl['p50']:.4f}" if wl else "-",
            f"{wl['p95']:.4f}" if wl else "-",
        ])
    return t.render()


def check_smoke(summary: dict) -> bool:
    """The smoke verdict: injected crashes cost exactly their own cells."""
    statuses = summary["statuses"]
    availability_ok = all(
        g["statuses"] == {"ok": g["cells"]} for g in summary["groups"]
        if g["key"].get("mtbf_frac") is not None
    )
    injected = statuses.get("crashed", 0) + statuses.get("failed", 0)
    return availability_ok and injected == 2 and statuses.get("ok", 0) >= 6


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Monte-Carlo work-lost distribution vs MTBF × interval"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid, 2 workers, 2 injected cell "
                             "crashes the campaign must survive")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--dir", default=None,
                        help=f"campaign directory (default {DEFAULT_DIR})")
    parser.add_argument("--json", action="store_true",
                        help="also write BENCH_availability_mc.json")
    parser.add_argument("--out", default=None,
                        help="output path for --json")
    args = parser.parse_args(argv)
    root = args.dir or (DEFAULT_DIR + ("_smoke" if args.smoke else ""))
    workers = args.workers or (2 if args.smoke else None)
    summary = sweep(smoke=args.smoke, workers=workers, root=root,
                    progress=print)
    print()
    if args.smoke:
        print(render(summary))
        ok = check_smoke(summary)
        print(f"smoke {'OK' if ok else 'FAILED'}: every availability cell "
              "finished ok; the 2 injected worker crashes were isolated "
              "to their own cells")
        return 0 if ok else 1
    save_result("availability_mc", render(summary), summary)
    if args.json:
        path = write_bench_json("availability_mc", summary, args.out)
        print(f"\nwrote {path}")
    return 0


def test_availability_mc(once):
    summary = once(sweep)
    assert summary["cells_total"] >= 200, "the MC study needs ≥200 cells"
    # zero campaign-level failures: every cell of the real grid finished
    assert summary["statuses"] == {"ok": summary["cells_total"]}
    save_result("availability_mc", render(summary), summary)

    # a second pass over the same directory is pure cache hits, and the
    # aggregate it produces is bit-identical — the resumability contract
    again = sweep()
    assert again["run"]["ran"] == 0
    assert again["run"]["skipped"] == again["run"]["total"]
    assert {k: v for k, v in again.items() if k != "run"} \
        == {k: v for k, v in summary.items() if k != "run"}

    # per-trial invariants, straight from the journal
    records = CampaignStore(summary["campaign_dir"]).records()
    trials = [r["result"] for r in records.values()]
    for t in trials:
        if t["outcome"] == "censored":
            assert t["work_lost"] == 0.0 and t["kill_at"] >= t["base_elapsed"]
        elif t["outcome"] == "lost":
            # nothing durable yet: everything up to the crash is gone
            assert t["work_lost"] == t["kill_at"] < t["base_elapsed"]
        else:
            # rolled-back progress plus detection latency, bounded by
            # how far the job had actually gotten
            assert 0.0 <= t["work_lost"] <= t["base_elapsed"]

    def trials_of(axis, value):
        return [r["result"] for r in records.values()
                if r["params"].get(axis) == value]

    def mean(vals):
        return sum(vals) / len(vals)

    # recovered trials lose on average about half a checkpoint interval:
    # the tightest interval must beat the loosest
    intervals = sorted({r["params"]["interval_frac"]
                        for r in records.values()})
    recovered = {
        i: [t["work_lost"] for t in trials_of("interval_frac", i)
            if t["outcome"] == "recovered"]
        for i in intervals
    }
    assert mean(recovered[intervals[0]]) <= mean(recovered[intervals[-1]])

    # rarer failures: more censored trials, less expected loss (pooled
    # over the interval axis — per-group means drown in MC noise)
    mtbfs = sorted({r["params"]["mtbf_frac"] for r in records.values()})
    frail, hardy = trials_of("mtbf_frac", mtbfs[0]), \
        trials_of("mtbf_frac", mtbfs[-1])
    n_censored = [sum(1 for t in ts if t["outcome"] == "censored")
                  for ts in (frail, hardy)]
    assert n_censored[0] < n_censored[1]
    assert (mean([t["work_lost"] or 0.0 for t in frail])
            > mean([t["work_lost"] or 0.0 for t in hardy]))


if __name__ == "__main__":
    raise SystemExit(main())
