"""Cross-machine restart: checkpoint on Cori, restart anywhere.

The tentpole claim of the implementation-oblivious lower half is that a
checkpoint image holds only the *portable upper half* — replay log,
protocol state, virtual handles, application state — while everything
machine-derived (costs, FS-register tier, network and burst-buffer
models) is re-derived from the restore target.  This bench checkpoints
the GROMACS-style MD proxy on Cori Haswell, then restarts the same
image on each target machine and verifies:

* application results are identical everywhere (the upper half cannot
  tell it moved);
* protocol activity (collective/pt2pt call counts) is preserved;
* elapsed virtual time differs per target — the re-derived lower half
  prices the same communication against the target's hardware.

An elastic data point restarts a block-decomposed sum onto a different
rank count via app-level re-decomposition and checks the
decomposition-invariant answer.
"""

import warnings

from repro.apps.md_proxy import MdConfig, MdProxy
from repro.apps.micro import ElasticBlockSum
from repro.bench import BenchScale, current_scale, provenance, save_result
from repro.errors import MigrationWarning
from repro.hosts import CORI_HASWELL, CORI_KNL, PERLMUTTER, TESTBOX_MN
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import (
    HALTED,
    CheckpointPlan,
    resume_elastic,
    resume_from_checkpoint,
)
from repro.util.tables import AsciiTable

CFG = ManaConfig.feature_2pc().but(record_replay=True)


def _halt_and_save(nranks, factory, frac, machine, path):
    """Run for reference, halt a fresh run at ``frac``, save the image."""
    baseline = ManaSession(nranks, factory, machine, CFG).run()
    halted = ManaSession(nranks, factory, machine, CFG)
    out = halted.run(checkpoints=[
        CheckpointPlan(at=baseline.elapsed * frac, action="halt")
    ])
    assert out.results == [HALTED] * nranks
    halted.save_checkpoint(path)
    return baseline


def migrate(nranks: int, steps: int, targets, workdir) -> dict:
    """Checkpoint the MD proxy on Cori Haswell; restart per target."""
    md = MdConfig(nranks=nranks, steps=steps)
    factory = lambda r: MdProxy(r, md, CORI_HASWELL)
    path = workdir / "cori.img"
    baseline = _halt_and_save(nranks, factory, 0.5, CORI_HASWELL, path)

    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", MigrationWarning)
        reference = resume_from_checkpoint(
            path, factory, CORI_HASWELL, CFG).run()
        for target in targets:
            out = resume_from_checkpoint(path, factory, target, CFG).run()
            assert out.results == baseline.results, target.name
            assert (out.total_collective_calls
                    == reference.total_collective_calls), target.name
            assert (out.total_pt2pt_calls
                    == reference.total_pt2pt_calls), target.name
            rows.append({
                "target": target.name,
                "kernel": target.linux_kernel,
                "elapsed_s": out.elapsed,
                "vs_source": out.elapsed / reference.elapsed,
                "collectives": out.total_collective_calls,
                "pt2pt": out.total_pt2pt_calls,
            })
    return {
        "source": CORI_HASWELL.name,
        "nranks": nranks,
        "steps": steps,
        "source_elapsed_s": reference.elapsed,
        "targets": rows,
    }


def elastic_point(old_nranks: int, new_nranks: int, workdir) -> dict:
    """Restart a block-decomposed sum onto a different rank count."""
    factory = lambda r: ElasticBlockSum(r, old_nranks, iters=6)
    path = workdir / "elastic.img"
    _halt_and_save(old_nranks, factory, 0.5, CORI_HASWELL, path)
    new_factory = lambda r: ElasticBlockSum(r, new_nranks, iters=6)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", MigrationWarning)
        out = resume_elastic(path, new_factory, PERLMUTTER,
                             nranks=new_nranks).run()
    want = ElasticBlockSum.expected(64, 6)
    assert out.results == [want] * new_nranks
    return {
        "source_ranks": old_nranks,
        "target_ranks": new_nranks,
        "target_machine": PERLMUTTER.name,
        "elapsed_s": out.elapsed,
        "result_invariant": True,
    }


def sweep(workdir) -> dict:
    scale = current_scale()
    nranks = 64 if scale is BenchScale.FULL else 16
    steps = 12 if scale is BenchScale.FULL else 8
    targets = [PERLMUTTER, TESTBOX_MN]
    if scale is BenchScale.FULL:
        targets.append(CORI_KNL)
    data = migrate(nranks, steps, targets, workdir)
    data["elastic"] = elastic_point(8, 4, workdir)
    data["provenance"] = provenance(machine=CORI_HASWELL, cfg=CFG)
    return data


def render(data) -> str:
    t = AsciiTable(
        ["restore target", "kernel", "elapsed (s)", "vs source",
         "collectives", "pt2pt"],
        title=f"Cross-machine restart — MD proxy, {data['nranks']} ranks "
              f"ckpt'd on {data['source']} "
              f"(source resume {data['source_elapsed_s']:.4f}s)",
    )
    for row in data["targets"]:
        t.add_row([
            row["target"], row["kernel"], f"{row['elapsed_s']:.4f}",
            f"{row['vs_source']:.2f}x", row["collectives"], row["pt2pt"],
        ])
    el = data["elastic"]
    return (t.render()
            + f"\nelastic: {el['source_ranks']} -> {el['target_ranks']} "
              f"ranks on {el['target_machine']} in {el['elapsed_s']:.4f}s; "
              "decomposition-invariant result verified")


def test_migration(once, tmp_path):
    data = once(sweep, tmp_path)
    save_result("migration", render(data), data)
    # identical results already asserted inside; the lower half must
    # actually differ per target, or the rebind did nothing
    elapsed = {row["elapsed_s"] for row in data["targets"]}
    elapsed.add(data["source_elapsed_s"])
    assert len(elapsed) == len(data["targets"]) + 1


def smoke(nranks: int = 8, steps: int = 6) -> dict:
    import tempfile
    from pathlib import Path

    workdir = Path(tempfile.mkdtemp(prefix="mana-migration-"))
    data = migrate(nranks, steps, [PERLMUTTER, TESTBOX_MN], workdir)
    data["elastic"] = elastic_point(4, 6, workdir)
    return data


def main(argv=None) -> int:
    import argparse
    import time

    parser = argparse.ArgumentParser(
        description="cross-machine restart: ckpt on Cori, restart anywhere"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small cross-machine + elastic pass (CI)")
    parser.add_argument("--nranks", type=int, default=8,
                        help="rank count for --smoke (default 8)")
    args = parser.parse_args(argv)
    if args.smoke:
        t0 = time.perf_counter()
        data = smoke(args.nranks)
        dt = time.perf_counter() - t0
        names = ", ".join(r["target"] for r in data["targets"])
        print(f"smoke OK: {data['nranks']}-rank image from "
              f"{data['source']} restored on {names} with identical "
              f"results; elastic {data['elastic']['source_ranks']}->"
              f"{data['elastic']['target_ranks']} ranks verified "
              f"({dt:.1f}s wall)")
        return 0
    import tempfile
    from pathlib import Path

    workdir = Path(tempfile.mkdtemp(prefix="mana-migration-"))
    data = sweep(workdir)
    save_result("migration", render(data), data)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
