"""Figure 4: number of collective communications per second per process
for VASP-5, on Haswell and KNL.

Paper: "When doubling the number of ranks, the growth in the number of
collective calls is roughly logarithmic in the number of nodes."  The
figure motivates why VASP is the stress test for MANA's per-collective
overhead.

Here: the DFT proxy (pure-MPI VASP-5 flavor) run natively across node
counts; the rate rises with scale and flattens (strong scaling shrinks
the compute between collectives until the collectives themselves bound
the rate), i.e. roughly logarithmic growth.
"""

import math

from repro.apps.workloads import workload
from repro.bench import BenchScale, collective_rate_point, current_scale, save_result
from repro.hosts import CORI_HASWELL, CORI_KNL
from repro.util.tables import AsciiTable, format_series


def sweep():
    scale = current_scale()
    nodes_list = [1, 2, 4, 8, 16] if scale is BenchScale.FULL else [1, 2, 4]
    w = workload("CaPOH")
    iterations = 4 if scale is BenchScale.FULL else 3
    data = {"workload": w.name, "machines": {}}
    for machine in (CORI_HASWELL, CORI_KNL):
        data["machines"][machine.name] = [
            collective_rate_point(n, machine, w, iterations)
            for n in nodes_list
        ]
    return data


def render(data) -> str:
    lines = [
        "Figure 4 — collective communications per second per process "
        f"(VASP-5 proxy, {data['workload']}, native)",
    ]
    for name, rows in data["machines"].items():
        t = AsciiTable(
            ["nodes", "ranks", "collectives/s/process"],
            title=f"\n{name.upper()}",
        )
        for r in rows:
            t.add_row(
                [r["nodes"], r["nranks"],
                 f"{r['collectives_per_sec_per_process']:.0f}"]
            )
        lines.append(t.render())
        lines.append(
            format_series(
                f"{name} rate vs nodes",
                [r["nodes"] for r in rows],
                [r["collectives_per_sec_per_process"] for r in rows],
                bar=True,
            )
        )
    return "\n".join(lines)


def test_fig4_collective_rate(once):
    data = once(sweep)
    save_result("fig4_vasp_collectives", render(data), data)
    for name, rows in data["machines"].items():
        rates = [r["collectives_per_sec_per_process"] for r in rows]
        # the rate grows when doubling nodes at small scale ...
        head = rates[:3]
        assert all(b > a for a, b in zip(head, head[1:])), (name, rates)
        # ... but sublinearly (roughly logarithmic): doubling nodes gains
        # less than doubling the rate, and at large node counts the rate
        # saturates (collective latency grows with log p) — allow a
        # plateau/taper, but no collapse
        for a, b in zip(rates, rates[1:]):
            assert b / a < 2.0, (name, rates)
        peak = max(rates)
        assert rates[-1] > 0.5 * peak, (name, rates)
    # Haswell's faster compute yields a higher collective rate (as in the
    # paper's figure, where the Haswell series sits above KNL)
    h = data["machines"]["haswell"][0]["collectives_per_sec_per_process"]
    k = data["machines"]["knl"][0]["collectives_per_sec_per_process"]
    assert h > k
