"""Section III-J ablation: stragglers and the two-phase commit.

Paper: "a straggler is an MPI process ... that may take minutes to
hours to join the collective communication ... no checkpoint can take
place while some processes are still in the middle of a collective call
in the lower-half MPI library."  Under the barrier-always algorithm a
straggler's peers sit *inside* the pre-collective barrier, so the
checkpoint must wait out the entire straggler delay; the hybrid
algorithm's peers park interruptibly at wrapper entries, but a rank
stuck inside a genuine collective still gates the snapshot (its peers
get released to unblock it).  The PT2PT_ALWAYS alternative never enters
the lower half at all, so the checkpoint can cut straight through.

Measured: time from checkpoint request to snapshot (quiesce time) as a
function of the straggler's compute delay, per two-phase-commit variant —
it tracks the straggler delay in *every* variant (the straggler must
reach a safe point; that is inherent, and the paper says as much) —
plus the *runtime* each variant pays for its checkpointability, which is
where the hybrid wins: it needs no barrier in front of every collective
while waiting for a checkpoint that may never come.
"""

from repro.mana.session import run_app_native

from repro.apps.micro import StragglerCollective
from repro.bench import BenchScale, current_scale, save_result
from repro.hosts import CORI_HASWELL
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import CollectiveMode
from repro.mana.session import CheckpointPlan
from repro.util.tables import AsciiTable

VARIANTS = {
    "barrier-always (master)": ManaConfig.master(),
    "hybrid (feature/2pc)": ManaConfig.feature_2pc(),
    "pt2pt collectives": ManaConfig.feature_2pc().but(
        collective_mode=CollectiveMode.PT2PT_ALWAYS
    ),
}


def one(cfg: ManaConfig, slow_s: float) -> dict:
    nranks = 8
    factory = lambda r: StragglerCollective(
        r, iters=3, fast_s=1e-4, slow_s=slow_s, straggler=0
    )
    session = ManaSession(nranks, factory, CORI_HASWELL, cfg)
    out = session.run(
        checkpoints=[CheckpointPlan(at=slow_s * 0.5, action="resume")]
    )
    assert out.results == [24] * nranks
    rec = out.checkpoints[0]
    native = run_app_native(nranks, factory, CORI_HASWELL)
    return {
        "quiesce": rec["quiesce_time"],
        "release_rounds": rec["release_rounds"],
        "runtime_ratio": out.elapsed / native.elapsed,
    }


def sweep():
    scale = current_scale()
    delays = [0.05, 0.2, 0.8] if scale is BenchScale.FULL else [0.05, 0.2]
    data = {"delays": delays, "variants": {}}
    for name, cfg in VARIANTS.items():
        data["variants"][name] = [one(cfg, d) for d in delays]
    return data


def render(data) -> str:
    t = AsciiTable(
        ["2PC variant"]
        + [f"quiesce @ {d}s" for d in data["delays"]]
        + ["release rounds", "runtime w/ ckpt vs native"],
        title="Section III-J ablation — straggler impact on checkpoint latency",
    )
    for name, rows in data["variants"].items():
        t.add_row(
            [name]
            + [f"{r['quiesce']:.4f}s" for r in rows]
            + [rows[-1]["release_rounds"],
               f"{rows[-1]['runtime_ratio']:.2f}x"]
        )
    return t.render()


def test_straggler_gates_checkpoint(once):
    data = once(sweep)
    save_result("ablation_straggler", render(data), data)
    delays = data["delays"]
    for name, rows in data["variants"].items():
        for d, r in zip(delays, rows):
            # no variant can checkpoint before the straggler reaches a
            # safe point — the inherent wait of Section III-J
            assert r["quiesce"] > 0.3 * d, (name, d, r)
        assert rows[-1]["quiesce"] > rows[0]["quiesce"] * 2
    # the pt2pt-collective variant needs no equalization at all
    for r in data["variants"]["pt2pt collectives"]:
        assert r["release_rounds"] == 0
