"""Section III-I item 3 ablation: the local-to-global rank helper.

Paper: "An internal helper method that translates the local rank of a
communicator to a global rank makes multiple calls to the lower half.
Calls to the lower half adjust the FS register, which is expensive ...
This can be rewritten to make fewer calls."

Here: the same point-to-point workload with the multi-call helper
(master/original behaviour) vs the rewritten single-call version
(feature/2pc), on the expensive FS tier where each saved lower-half
round trip matters most.  Measured: total lower-half calls and runtime.
"""

from repro.apps.micro import TokenRing
from repro.bench import BenchScale, current_scale, save_result
from repro.hosts import CORI_HASWELL
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import FsTier
from repro.mana.session import run_app_native
from repro.util.tables import AsciiTable


def one(multi: bool, laps: int) -> dict:
    nranks = 16
    factory = lambda r: TokenRing(r, laps=laps, compute_s=3e-6)
    cfg = ManaConfig.feature_2pc().but(
        multi_call_rank_helper=multi, fs_tier=FsTier.SYSCALL
    )
    session = ManaSession(nranks, factory, CORI_HASWELL, cfg)
    out = session.run()
    native = run_app_native(nranks, factory, CORI_HASWELL)
    return {
        "helper": "multi-call" if multi else "single-call",
        "lower_half_calls": sum(s.lower_half_calls for s in out.rank_stats),
        "elapsed": out.elapsed,
        "ratio": out.elapsed / native.elapsed,
    }


def sweep():
    scale = current_scale()
    laps = 60 if scale is BenchScale.FULL else 25
    return {"laps": laps, "rows": [one(True, laps), one(False, laps)]}


def render(data) -> str:
    t = AsciiTable(
        ["rank-translation helper", "lower-half calls", "runtime (s)",
         "ratio vs native"],
        title="Section III-I.3 ablation — multi-call rank helper "
              f"(token ring, SYSCALL FS tier, {data['laps']} laps)",
    )
    for r in data["rows"]:
        t.add_row(
            [r["helper"], r["lower_half_calls"], f"{r['elapsed']:.5f}",
             f"{r['ratio']:.2f}x"]
        )
    return t.render()


def test_rank_helper_lower_half_calls(once):
    data = once(sweep)
    save_result("ablation_rank_helper", render(data), data)
    multi, single = data["rows"]
    # the rewrite saves two lower-half round trips per pt2pt wrapper
    assert multi["lower_half_calls"] > single["lower_half_calls"] * 1.3
    assert multi["elapsed"] > single["elapsed"]
