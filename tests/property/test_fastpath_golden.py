"""Golden equivalence suite for the DES fast path.

The scheduler rewrite (same-instant FIFO lane, lambda-free event
encoding), the fused pipeline dispatch, lazy tracing, and the memoized
cost models are all gated on ONE contract: every seeded scenario —
machines x configs x applications, checkpointed sessions and fault
scenarios included — produces **bit-identical** virtual times, trace
event streams, traffic counters, and per-rank results to the
pre-optimization implementation.

The fingerprints below were captured with ``tools/capture_goldens.py``
at the commit immediately before the fast-path work (the reference
implementation is preserved as
:class:`repro.des.scheduler.ReferenceScheduler`).  The capture tool
rewinds every process-global id counter (msg ids, request ids, window
and memory handles) at the start of each case, so each fingerprint is
order-independent — pytest may interleave cases freely and still match
a fresh-interpreter capture.  Two directions are checked:

* the optimized fast path still reproduces every golden, and
* ``ReferenceScheduler`` (the original heap-of-closures event loop)
  also reproduces them, so the goldens themselves stay anchored to the
  pre-optimization semantics and the A/B comparison is live, not
  historical.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python tools/capture_goldens.py
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "tools"))

from capture_goldens import (  # noqa: E402
    REEXEC_CASES,
    matrix,
    reexec_fingerprint,
)

from repro.des.scheduler import ReferenceScheduler, Scheduler  # noqa: E402

#: captured by tools/capture_goldens.py before the fast-path work;
#: ``elapsed`` is the exact float repr of the final virtual time and
#: ``trace_sha`` hashes the full JSONL trace stream (every emission, in
#: order, with virtual timestamps)
GOLDENS = {
    "dft_testbox_master": {
        "bytes": 122430,
        "elapsed": "0.0019721001075625145",
        "events": 2911,
        "messages": 653,
        "results_sha": "29338a67a9640e7fd4123e7481dff6b6aec5e49d11351da2d1f463767726c2f6",
        "trace_sha": "924f5d37e43052c1dd52ed10455dd7c4615a960b1ad0e5958b47c9f70225f5b4",
    },
    "dft_haswell_master": {
        "bytes": 378116,
        "elapsed": "0.0019520934383793925",
        "events": 9307,
        "messages": 2219,
        "results_sha": "623f3b1093b957d1b3c172d651a225e52f3b399d93aaddbff31622fe445787a4",
        "trace_sha": "260d8c25236fee6134ceec197a668ec755682a37a38742efaef887e5619eac03",
    },
    "ring_testbox_original": {
        "bytes": 240,
        "elapsed": "0.0012676074666666693",
        "events": 557,
        "messages": 66,
        "results_sha": "78275ade93a9d4726987b7c3d13a5d04a140fc53cc30fb52d631c76ed87c5f1e",
        "trace_sha": "9af638c4a661790519470000a518f23ec511a05ba9bb7da6c90c0bc1bb385cf1",
    },
    "randpt2pt_mn_2pc": {
        "bytes": 2304,
        "elapsed": "0.00019513000000000012",
        "events": 373,
        "messages": 54,
        "results_sha": "eb9a56721adf7986a38d7b1a59b75e5f6fc69c10fa47a47ca92ba5763a54bf51",
        "trace_sha": "a676c78a8767908be5eaf535099d0ddec9b654e4640d2613067e9bf08edf1ffa",
    },
    "md_knl_ft": {
        "bytes": 4747264,
        "elapsed": "0.18195015723099833",
        "events": 6594,
        "messages": 296,
        "results_sha": "6e9400d9595c888e72ce5a0e9f72801f86ee6d5ba1566178fdfa8fadce5a7cff",
        "trace_sha": "8325849d5add6d8c87553378cc750d39ee4941a9ca5f2d6f34f9acd8c3db85de",
    },
    "icoll_testbox_2pc": {
        "bytes": 480,
        "elapsed": "0.0001864000000000001",
        "events": 458,
        "messages": 75,
        "results_sha": "4ce5a975c0838bd521d3971fb177f412d72a4ab903177ea533d527b7725d35c0",
        "trace_sha": "103f0b682b91e7ddb6ed24969cbf3fb735040cc8cfffebab19ca5f46bd4a11a1",
    },
    "ckpt_ring_2pc": {
        "bytes": 1104,
        "elapsed": "0.020850951716666698",
        "events": 946,
        "messages": 96,
        "results_sha": "1041f5b3af406f7d21617730183b48ac133ddc1bc70d6a1eb8caec0f62b21f5c",
        "trace_sha": "2292dd6f27dc9224a286a1d9fa0581864ac4816be6ed8664b0637503a99b4cd5",
    },
    "ckpt_randpt2pt_ft": {
        "bytes": 2336,
        "elapsed": "0.0015440651249999996",
        "events": 470,
        "messages": 52,
        "results_sha": "e243f514f4b24aeb6630ddca24682072bf574ba99340144335590d80ab7db1d3",
        "trace_sha": "0de58523714a40cc400931e6e2ff59de522d7db2a5ab1a1b2019108c00087bd8",
    },
    "fault_kill_after_ckpt": {
        "ok": True,
        "summary_sha": "0d3e26bf3b77a58f886814b5fa460e35c8c321bf4e5956fb20cf4d5c34a2bf89",
    },
    "fault_drop_commit": {
        "ok": True,
        "summary_sha": "328c62bd90b70a2da08cbd12c6856adf2f5848c2803a32a68bf789d82eda5a9d",
    },
    "fault_corrupt_blob": {
        "ok": True,
        "summary_sha": "0388a074b51d0d4bfc6e936cf5084e915bfd31918837013681aca4f84b8eb541",
    },
    "reexec_ring_2pc": {
        "bytes": 128,
        "elapsed": "0.005599789447619044",
        "events": 312,
        "messages": 24,
        "results_sha": "c441a2ca6d2b04cdc1dacfcfd67fbd34992282cd0840487575a5c58b087155d6",
        "trace_sha": "25ff3cdf5288a3af402f6a319805fa3702c33e4399b6321896dc329a5d74cc4d",
    },
    "reexec_randpt2pt_2pc": {
        "bytes": 960,
        "elapsed": "0.003365594761904759",
        "events": 311,
        "messages": 30,
        "results_sha": "7d94c65748cff3e78ce7862d411ac8f887fbb513dc9acc104b56c42bfeed4571",
        "trace_sha": "1a9be6e248bc842ac3c64181f3a085c409a7e5b483566d9987ed5e0af51a7a72",
    },
    "reexec_icoll_2pc": {
        "bytes": 960,
        "elapsed": "0.00453680571428571",
        "events": 809,
        "messages": 128,
        "results_sha": "dad70af6a6059e3e33a3d897335ee163fceae69642ea96124b715242eecf32d8",
        "trace_sha": "d6ab9223f01f0bbdd54768e670f91b49b4405db5f18115e4385a63079b53dc4a",
    },
    "reexec_churn_2pc": {
        "bytes": 416,
        "elapsed": "0.003517578228571425",
        "events": 225,
        "messages": 32,
        "results_sha": "e1d24f1677082980ad3e61fc2a64d8232c03217ff3038c0b27aba60897d34db7",
        "trace_sha": "74d6ec0d5442b637d2581a9ccb0ae333640061e86d9fba0cfeae96ec098a0abf",
    },
}

_MATRIX = dict(matrix())


def test_matrix_covers_goldens():
    """The capture tool and the pinned goldens must agree on the cases."""
    assert set(_MATRIX) == set(GOLDENS)


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_fastpath_bit_identical(name):
    """Optimized scheduler + fused pipeline reproduce every golden."""
    assert _MATRIX[name]() == GOLDENS[name]


@pytest.mark.parametrize(
    "name",
    ["dft_testbox_master", "ring_testbox_original", "ckpt_ring_2pc",
     "fault_drop_commit"],
)
def test_reference_scheduler_bit_identical(name, monkeypatch):
    """The preserved pre-optimization event loop reproduces the same
    goldens, keeping the A/B anchor live (a subset: the reference loop
    is slower, and one success per scenario family pins the anchor)."""
    import repro.mana.session as session_mod

    monkeypatch.setattr(session_mod, "Scheduler", ReferenceScheduler)
    assert _MATRIX[name]() == GOLDENS[name]


@pytest.mark.parametrize("name", sorted(REEXEC_CASES))
def test_ir_noop_bit_identical(name):
    """The IR replay interpreter with the no-op pass pipeline is
    bit-identical to the legacy per-call log walk: same virtual times,
    same trace stream, same traffic, same results.  The ``"off"``
    fingerprints are pinned in GOLDENS (captured via the capture tool's
    REEXEC matrix entries), so this also anchors legacy REEXEC itself."""
    assert reexec_fingerprint(*REEXEC_CASES[name],
                              replay_compile="noop") == GOLDENS[name]


@pytest.mark.parametrize("name", sorted(REEXEC_CASES))
def test_ir_opt_same_times_fewer_events(name):
    """The optimizing pipeline changes how replay executes, never what
    it computes: final virtual times, traffic counters, and per-rank
    results match the legacy goldens exactly, with strictly fewer
    scheduler events (dead cooperative yields eliminated).  The trace
    stream legitimately differs (ir_pass events; fewer advances)."""
    got = reexec_fingerprint(*REEXEC_CASES[name], replay_compile="opt")
    gold = GOLDENS[name]
    for key in ("elapsed", "messages", "bytes", "results_sha"):
        assert got[key] == gold[key], key
    assert got["events"] < gold["events"]


def test_reference_is_a_distinct_loop():
    """Guard against the reference silently collapsing into the fast
    path (which would make the A/B test vacuous)."""
    assert ReferenceScheduler is not Scheduler
    assert ReferenceScheduler.run is not Scheduler.run
    assert ReferenceScheduler.schedule is not Scheduler.schedule
