"""Checksum round-trip property: serialized images restore bit-identically,
and any single flipped blob byte is caught by verification — surfacing as a
:class:`CheckpointError` naming the rank and epoch, never as a raw
serde/pickle error from inside the deserializer."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import CheckpointError
from repro.mana.checkpoint import CheckpointImage
from repro.util import serde
from repro.util.hashing import stable_hash


def _image(state: dict, rank: int, epoch: int,
           compress: bool = False) -> CheckpointImage:
    blob = serde.dumps(state, compress=compress)
    return CheckpointImage(
        rank=rank,
        epoch=epoch,
        blob=blob,
        declared_app_bytes=32 << 20,
        taken_at=1.25,
        base_bytes=64 << 20,
        compressed=compress,
        checksum=stable_hash(blob),
    )


states = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.binary(max_size=64),
        st.lists(st.integers(min_value=0, max_value=255), max_size=16),
    ),
    max_size=8,
)


@settings(max_examples=50, deadline=None)
@given(state=states, rank=st.integers(min_value=0, max_value=4095),
       epoch=st.integers(min_value=1, max_value=1000),
       compress=st.booleans())
def test_round_trip_bit_identical(state, rank, epoch, compress):
    img = _image(state, rank, epoch, compress)
    raw = img.to_bytes()
    back = CheckpointImage.from_bytes(raw)
    assert back.blob == img.blob
    assert back.to_bytes() == raw          # stable re-serialization
    assert back.rank == rank and back.epoch == epoch
    assert back.checksum == img.checksum
    assert back.nbytes == img.nbytes
    assert back.payload() == state


@settings(max_examples=50, deadline=None)
@given(state=states, rank=st.integers(min_value=0, max_value=4095),
       epoch=st.integers(min_value=1, max_value=1000),
       data=st.data())
def test_flipped_blob_byte_is_caught_with_context(state, rank, epoch, data):
    img = _image(state, rank, epoch)
    pos = data.draw(st.integers(min_value=0, max_value=len(img.blob) - 1))
    bit = data.draw(st.integers(min_value=1, max_value=255))
    corrupted = bytearray(img.blob)
    corrupted[pos] ^= bit
    bad = CheckpointImage(
        rank=rank, epoch=epoch, blob=bytes(corrupted),
        declared_app_bytes=img.declared_app_bytes, taken_at=img.taken_at,
        base_bytes=img.base_bytes, checksum=img.checksum,
    )
    with pytest.raises(CheckpointError) as exc:
        bad.payload()
    # the error is attributable, not a raw pickle traceback
    message = str(exc.value)
    assert f"rank {rank}" in message
    assert f"epoch {epoch}" in message
    assert "checksum" in message


@settings(max_examples=50, deadline=None)
@given(state=states, rank=st.integers(min_value=0, max_value=4095),
       epoch=st.integers(min_value=1, max_value=1000),
       data=st.data())
def test_flipped_frame_byte_never_raises_raw_errors(state, rank, epoch, data):
    """Flipping any byte of the full serialized frame (header included)
    either still round-trips to the identical image (flips confined to
    ignored bytes cannot happen — every byte is covered) or raises a
    typed CheckpointError; pickle/json internals never leak."""
    img = _image(state, rank, epoch)
    raw = bytearray(img.to_bytes())
    pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    bit = data.draw(st.integers(min_value=1, max_value=255))
    raw[pos] ^= bit
    try:
        back = CheckpointImage.from_bytes(bytes(raw))
    except CheckpointError:
        return
    except (KeyError, TypeError, ValueError) as exc:
        # header JSON that still parses but with mutated field names or
        # types is acceptable only as a typed failure, not a crash later
        pytest.fail(f"raw {type(exc).__name__} leaked from from_bytes: {exc}")
    else:
        assert back.to_bytes() == img.to_bytes()


def test_legacy_image_without_checksum_still_loads():
    blob = serde.dumps({"x": 1})
    img = CheckpointImage(rank=0, epoch=1, blob=blob,
                          declared_app_bytes=0, taken_at=0.0)
    assert img.checksum is None
    assert img.payload() == {"x": 1}       # verification is a no-op
