"""Property: fence-epoch RMA matches a sequential reference model.

Random sequences of put/accumulate/get across epochs, executed by the
simulated library, must agree with a direct numpy evaluation of the
same schedule (puts/accumulates apply at the closing fence; gets read
the epoch-opening snapshot)."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.base import MpiProgram
from repro.hosts import TESTBOX
from repro.mana.session import run_app_native
from repro.util.rng import make_rng

WIN_SIZE = 8


def build_ops(seed: int, nranks: int, epochs: int, ops_per_epoch: int):
    """Global schedule: ops[e] = list of (origin, kind, target, offset,
    value, count)."""
    rng = make_rng(seed, "rma")
    schedule = []
    for _e in range(epochs):
        epoch_ops = []
        put_cells = set()   # cells written by a put this epoch
        acc_cells = set()   # cells accumulated this epoch
        for _ in range(ops_per_epoch):
            origin = int(rng.integers(nranks))
            kind = ["put", "acc", "get"][int(rng.integers(3))]
            target = int(rng.integers(nranks))
            count = int(rng.integers(1, 4))
            offset = int(rng.integers(0, WIN_SIZE - count + 1))
            value = float(rng.integers(1, 100))
            cells = {(target, offset + i) for i in range(count)}
            # MPI leaves same-epoch conflicts undefined except
            # accumulate-with-accumulate (which commutes): generate only
            # well-defined schedules
            if kind == "put" and cells & (put_cells | acc_cells):
                continue
            if kind == "acc" and cells & put_cells:
                continue
            if kind == "put":
                put_cells |= cells
            elif kind == "acc":
                acc_cells |= cells
            epoch_ops.append((origin, kind, target, offset, value, count))
        schedule.append(epoch_ops)
    return schedule


def reference(schedule, nranks):
    """Sequential model: buffers update at fences; gets see pre-epoch."""
    buffers = {r: np.zeros(WIN_SIZE) for r in range(nranks)}
    gets = []
    for epoch_ops in schedule:
        snapshot = {r: b.copy() for r, b in buffers.items()}
        pending = []
        for origin, kind, target, offset, value, count in epoch_ops:
            if kind == "get":
                gets.append((origin, tuple(snapshot[target][offset:offset + count])))
            else:
                pending.append((target, offset, value, count, kind))
        # the library applies queued updates sorted by (target, offset)
        for target, offset, value, count, kind in sorted(
            pending, key=lambda t: (t[0], t[1])
        ):
            if kind == "put":
                buffers[target][offset:offset + count] = value
            else:
                buffers[target][offset:offset + count] += value
    return buffers, sorted(gets)


class RmaProgram(MpiProgram):
    def __init__(self, rank, schedule, nranks):
        super().__init__(rank)
        self.schedule = schedule
        self.nranks = nranks

    def main(self, api):
        win = yield from api.win_create(WIN_SIZE)
        my_gets = []
        for epoch_ops in self.schedule:
            yield from api.win_fence(win)  # open
            for origin, kind, target, offset, value, count in epoch_ops:
                if origin != api.rank:
                    continue
                if kind == "put":
                    yield from api.win_put(win, target, offset,
                                           np.full(count, value))
                elif kind == "acc":
                    yield from api.win_accumulate(win, target, offset,
                                                  np.full(count, value))
                else:
                    got = yield from api.win_get(win, target, offset, count)
                    my_gets.append((api.rank, tuple(got)))
            yield from api.win_fence(win)  # close: apply
        yield from api.win_fence(win)
        final = yield from api.win_get(win, api.rank, 0, WIN_SIZE)
        yield from api.win_fence(win)
        yield from api.win_free(win)
        return tuple(final), my_gets


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nranks=st.integers(min_value=1, max_value=5),
    epochs=st.integers(min_value=1, max_value=4),
    ops=st.integers(min_value=1, max_value=8),
)
def test_property_rma_matches_reference(seed, nranks, epochs, ops):
    schedule = build_ops(seed, nranks, epochs, ops)
    out = run_app_native(
        nranks, lambda r: RmaProgram(r, schedule, nranks), TESTBOX
    )
    ref_buffers, ref_gets = reference(schedule, nranks)
    sim_gets = []
    for rank, (final, my_gets) in enumerate(out.results):
        np.testing.assert_array_equal(np.array(final), ref_buffers[rank])
        sim_gets.extend(my_gets)
    assert sorted(sim_gets) == ref_gets
