"""Property-based tests on whole-system invariants.

These are the load-bearing guarantees of the reproduction:

* determinism — a simulation is a pure function of its inputs;
* the drain invariant — after any checkpoint, no application bytes
  remain in the fabric or in lower-half queues;
* transparency — for arbitrary (seeded) workloads and checkpoint
  times, a checkpointed/restarted run produces exactly the results of
  an undisturbed run.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.micro import AllreduceLoop, IcollStream, RandomPt2Pt, TokenRing
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import CollectiveMode, DrainAlgorithm
from repro.mana.session import CheckpointPlan, run_app_native

SLOW = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**SLOW)
@given(
    nranks=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
    rounds=st.integers(min_value=2, max_value=8),
)
def test_property_simulation_is_deterministic(nranks, seed, rounds):
    factory = lambda r: RandomPt2Pt(r, nranks, rounds=rounds, seed=seed)
    a = run_app_native(nranks, factory, TESTBOX)
    b = run_app_native(nranks, factory, TESTBOX)
    assert a.results == b.results
    assert a.elapsed == b.elapsed
    assert a.network_messages == b.network_messages


@settings(**SLOW)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
    frac=st.floats(min_value=0.05, max_value=0.85),
    drain=st.sampled_from([DrainAlgorithm.ALLTOALL, DrainAlgorithm.COORDINATOR]),
)
def test_property_pt2pt_restart_transparency(nranks, seed, frac, drain):
    """Checkpoint+restart at an arbitrary time never changes results."""
    factory = lambda r: RandomPt2Pt(r, nranks, rounds=6, seed=seed)
    cfg = ManaConfig.feature_2pc().but(drain=drain)
    base = ManaSession(nranks, factory, TESTBOX, cfg).run()
    session = ManaSession(nranks, factory, TESTBOX, cfg)
    out = session.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * frac, action="restart")]
    )
    assert out.results == base.results


@settings(**SLOW)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    frac=st.floats(min_value=0.05, max_value=0.9),
    mode=st.sampled_from(
        [CollectiveMode.HYBRID, CollectiveMode.PT2PT_ALWAYS,
         CollectiveMode.BARRIER_ALWAYS]
    ),
)
def test_property_collective_restart_transparency(nranks, frac, mode):
    factory = lambda r: AllreduceLoop(r, iters=6, compute_s=1e-4)
    cfg = ManaConfig.feature_2pc().but(collective_mode=mode)
    base = ManaSession(nranks, factory, TESTBOX, cfg).run()
    session = ManaSession(nranks, factory, TESTBOX, cfg)
    out = session.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * frac, action="restart")]
    )
    assert out.results == [AllreduceLoop.expected(nranks, 6)] * nranks
    assert out.results == base.results


@settings(**SLOW)
@given(
    frac=st.floats(min_value=0.05, max_value=0.8),
    waves=st.integers(min_value=2, max_value=5),
)
def test_property_icoll_restart_transparency(frac, waves):
    factory = lambda r: IcollStream(r, waves=waves, inflight=3, compute_s=1e-4)
    cfg = ManaConfig.feature_2pc()
    base = ManaSession(4, factory, TESTBOX, cfg).run()
    session = ManaSession(4, factory, TESTBOX, cfg)
    out = session.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * frac, action="restart")]
    )
    assert out.results == [IcollStream.expected(4, waves, 3)] * 4


@settings(**SLOW)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
    frac=st.floats(min_value=0.05, max_value=0.85),
)
def test_property_drain_invariant(nranks, seed, frac):
    """After the drain, zero application bytes in flight or unexpected."""
    factory = lambda r: RandomPt2Pt(r, nranks, rounds=5, seed=seed)
    cfg = ManaConfig.feature_2pc()
    base = ManaSession(nranks, factory, TESTBOX, cfg).run()
    session = ManaSession(nranks, factory, TESTBOX, cfg)
    # the restart path *asserts* the invariant inside
    # _teardown_and_replace_lower_half and raises RestartError otherwise
    out = session.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * frac, action="restart")]
    )
    assert out.results == base.results
    # counters balance globally at the end of the run
    sent = sum(m.counters.total_sent()[0] for m in session.rt.ranks)
    recvd = sum(
        m.counters.total_received()[0] + m.drain_buffer.nbytes()
        for m in session.rt.ranks
    )
    assert sent == recvd


@settings(**SLOW)
@given(
    laps=st.integers(min_value=2, max_value=6),
    fracs=st.lists(
        st.floats(min_value=0.1, max_value=0.8), min_size=1, max_size=3,
        unique=True,
    ),
)
def test_property_multiple_checkpoints_compose(laps, fracs):
    factory = lambda r: TokenRing(r, laps=laps, compute_s=5e-4)
    cfg = ManaConfig.feature_2pc()
    base = ManaSession(3, factory, TESTBOX, cfg).run()
    plans = [
        CheckpointPlan(at=base.elapsed * f, action="restart")
        for f in sorted(fracs)
    ]
    session = ManaSession(3, factory, TESTBOX, cfg)
    out = session.run(checkpoints=plans)
    assert out.results == base.results
