"""Same seed, same bits: the invariant seeded fault schedules stand on.

Every scenario in ``repro.faults`` calibrates kill windows against a
fault-free run of the same session and trusts that the faulted run is
event-identical up to the first injected fault.  That only holds if two
runs of the same workload with the same seed agree *bit for bit* — the
final virtual time, every ``NetworkStats`` counter, the per-pair traffic
ledgers.  These tests pin that contract, for plain runs, checkpointed
runs, and runs with an injected crash and automatic recovery.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

import pytest

from repro.apps.micro import RandomPt2Pt, TokenRing
from repro.faults import FaultInjector, FaultSchedule
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan

SLOW = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def fingerprint(session, out) -> dict:
    """Everything two identical runs must agree on, bit for bit."""
    s = session.network.stats
    return {
        "results": out.results,
        "elapsed": out.elapsed,
        "messages": s.messages,
        "bytes": s.bytes,
        "intranode": s.intranode_messages,
        "internode": s.internode_messages,
        "pair_messages": sorted(s.pair_messages.items()),
        "pair_bytes": sorted(s.pair_bytes.items()),
        "oob_messages": out.oob_messages,
        "checkpoints": out.checkpoints,
        "faults": out.faults,
        "detections": out.detections,
        "recoveries": out.recoveries,
    }


@settings(**SLOW)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
    frac=st.floats(min_value=0.1, max_value=0.8),
)
def test_property_checkpointed_run_is_bit_identical(nranks, seed, frac):
    factory = lambda r: RandomPt2Pt(r, nranks, rounds=5, seed=seed)
    cfg = ManaConfig.feature_2pc()
    probe = ManaSession(nranks, factory, TESTBOX, cfg).run()
    plans = [CheckpointPlan(at=probe.elapsed * frac, action="resume")]
    prints = []
    for _ in range(2):
        sess = ManaSession(nranks, factory, TESTBOX, cfg)
        out = sess.run(checkpoints=list(plans))
        prints.append(fingerprint(sess, out))
    assert prints[0] == prints[1]


def _faulted_run(seed: int, nranks: int) -> dict:
    """One kill-after-commit run with automatic recovery, fingerprinted."""
    factory = lambda r: TokenRing(r, laps=8, compute_s=2e-3)  # noqa: E731
    cfg = ManaConfig.fault_tolerant()
    ref = ManaSession(nranks, factory, TESTBOX, ManaConfig.feature_2pc()).run()
    plans = [CheckpointPlan(at=ref.elapsed * 0.3, action="resume")]
    base = ManaSession(nranks, factory, TESTBOX, cfg).run(
        checkpoints=list(plans)
    )
    committed = base.checkpoints[0]["completed_at"]
    tail = base.elapsed - committed
    sess = ManaSession(nranks, factory, TESTBOX, cfg)
    plan = FaultSchedule(seed=seed).random_kill(
        nranks, committed + 0.15 * tail, committed + 0.6 * tail
    )
    FaultInjector(sess, plan).arm()
    out = sess.run(checkpoints=list(plans))
    assert len(out.recoveries) == 1
    return fingerprint(sess, out)


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_faulted_run_is_bit_identical(seed):
    assert _faulted_run(seed, 4) == _faulted_run(seed, 4)


def test_fault_schedule_same_seed_same_specs():
    a = FaultSchedule(seed=42).random_kill(8, 1.0, 2.0).random_oob_delays(3, 1e-3)
    b = FaultSchedule(seed=42).random_kill(8, 1.0, 2.0).random_oob_delays(3, 1e-3)
    assert a.specs == b.specs
    c = FaultSchedule(seed=43).random_kill(8, 1.0, 2.0).random_oob_delays(3, 1e-3)
    assert a.specs != c.specs
