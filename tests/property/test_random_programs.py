"""Property: randomly generated MPI programs are transparent under MANA.

A seeded generator builds a global schedule mixing matched point-to-point
pairs, blocking collectives (same order on all ranks, as MPI requires),
non-blocking collectives held in flight, sub-communicator traffic, and
compute blocks.  For every generated program:

    native results == MANA results == MANA-with-restart results

This is the reproduction's strongest transparency statement: it is not
tied to any particular application skeleton.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.base import MpiProgram
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import CollectiveMode
from repro.mana.session import CheckpointPlan, run_app_native
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.ops import MAX, SUM
from repro.util.rng import make_rng


def build_schedule(seed: int, nranks: int, nsteps: int):
    """A global program: list of step descriptors every rank interprets."""
    rng = make_rng(seed, "random-program")
    steps = []
    for i in range(nsteps):
        kind = rng.choice(
            ["pt2pt", "allreduce", "bcast", "gather", "ibarrier",
             "subcomm", "compute", "alltoall"],
            p=[0.3, 0.15, 0.1, 0.08, 0.1, 0.07, 0.15, 0.05],
        )
        if kind == "pt2pt":
            src = int(rng.integers(nranks))
            dst = int(rng.integers(nranks - 1))
            dst = dst if dst < src else dst + 1
            steps.append(("pt2pt", src, dst, i, bool(rng.random() < 0.5)))
        elif kind == "bcast":
            steps.append(("bcast", int(rng.integers(nranks)), i))
        elif kind == "gather":
            steps.append(("gather", int(rng.integers(nranks))))
        elif kind == "subcomm":
            steps.append(("subcomm", int(rng.integers(1, 3))))
        elif kind == "compute":
            steps.append(("compute", float(rng.random() * 2e-4)))
        else:
            steps.append((kind,))
    return steps


class RandomProgram(MpiProgram):
    def __init__(self, rank: int, nranks: int, seed: int, nsteps: int):
        super().__init__(rank)
        self.schedule = build_schedule(seed, nranks, nsteps)
        self.nranks = nranks

    def main(self, api):
        me, p = api.rank, api.size
        trace = []
        pending = []  # in-flight ibarrier slots
        for step in self.schedule:
            kind = step[0]
            if kind == "pt2pt":
                _k, src, dst, tag, wildcard = step
                tag = tag % 100
                if me == src:
                    yield from api.send(("m", src, tag), dst, tag=tag)
                elif me == dst:
                    if wildcard:
                        data, st = yield from api.recv(ANY_SOURCE, tag)
                    else:
                        data, st = yield from api.recv(src, tag)
                    trace.append(data)
            elif kind == "allreduce":
                v = yield from api.allreduce(me + 1, SUM)
                trace.append(v)
            elif kind == "alltoall":
                row = yield from api.alltoall([me * p + j for j in range(p)])
                trace.append(tuple(row))
            elif kind == "bcast":
                _k, root, i = step
                data = ("b", i) if me == root else None
                trace.append((yield from api.bcast(data, root)))
            elif kind == "gather":
                _k, root = step
                g = yield from api.gather(me, root)
                if me == root:
                    trace.append(tuple(g))
            elif kind == "ibarrier":
                slot = yield from api.ibarrier()
                pending.append(slot)
                if len(pending) > 2:
                    yield from api.wait(pending.pop(0))
            elif kind == "subcomm":
                _k, ngroups = step
                sub = yield from api.comm_split(me % ngroups, key=me)
                v = yield from api.allreduce(me, MAX, comm=sub)
                trace.append(v)
                yield from api.comm_free(sub)
            elif kind == "compute":
                yield from api.compute(step[1])
        for slot in pending:
            yield from api.wait(slot)
        return tuple(trace)


SLOW = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**SLOW)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nranks=st.integers(min_value=2, max_value=6),
    nsteps=st.integers(min_value=5, max_value=25),
    frac=st.floats(min_value=0.1, max_value=0.85),
)
def test_property_random_program_transparency(seed, nranks, nsteps, frac):
    factory = lambda r: RandomProgram(r, nranks, seed, nsteps)
    native = run_app_native(nranks, factory, TESTBOX)
    cfg = ManaConfig.feature_2pc()
    mana = ManaSession(nranks, factory, TESTBOX, cfg).run()
    assert mana.results == native.results
    restarted = ManaSession(nranks, factory, TESTBOX, cfg).run(
        checkpoints=[CheckpointPlan(at=mana.elapsed * frac, action="restart")]
    )
    assert restarted.results == native.results


@settings(**SLOW)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nsteps=st.integers(min_value=5, max_value=20),
    mode=st.sampled_from([CollectiveMode.BARRIER_ALWAYS,
                          CollectiveMode.PT2PT_ALWAYS]),
)
def test_property_random_program_other_collective_modes(seed, nsteps, mode):
    """The same randomly generated programs under the original
    barrier-always algorithm and the pt2pt alternative.

    Note: the generated programs have no Bcast-before-Send dependency
    cycles (collective steps are globally ordered), so barrier-always is
    deadlock-free here and must also be *correct*."""
    nranks = 4
    factory = lambda r: RandomProgram(r, nranks, seed, nsteps)
    native = run_app_native(nranks, factory, TESTBOX)
    cfg = ManaConfig.feature_2pc().but(collective_mode=mode)
    mana = ManaSession(nranks, factory, TESTBOX, cfg).run()
    assert mana.results == native.results
    restarted = ManaSession(nranks, factory, TESTBOX, cfg).run(
        checkpoints=[CheckpointPlan(at=mana.elapsed * 0.4, action="restart")]
    )
    assert restarted.results == native.results


@settings(**SLOW)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nsteps=st.integers(min_value=5, max_value=18),
    get_status=st.booleans(),
    compress=st.booleans(),
    drain=st.sampled_from(["alltoall", "coordinator"]),
)
def test_property_random_program_config_matrix(seed, nsteps, get_status,
                                               compress, drain):
    """The transparency property across the configuration dimensions:
    drain algorithm x request_get_status x image compression."""
    from repro.mana.config import DrainAlgorithm

    nranks = 4
    factory = lambda r: RandomProgram(r, nranks, seed, nsteps)
    native = run_app_native(nranks, factory, TESTBOX)
    cfg = ManaConfig.feature_2pc().but(
        request_get_status=get_status,
        compress_images=compress,
        drain=(DrainAlgorithm.ALLTOALL if drain == "alltoall"
               else DrainAlgorithm.COORDINATOR),
    )
    mana = ManaSession(nranks, factory, TESTBOX, cfg).run()
    assert mana.results == native.results
    restarted = ManaSession(nranks, factory, TESTBOX, cfg).run(
        checkpoints=[CheckpointPlan(at=mana.elapsed * 0.45, action="restart")]
    )
    assert restarted.results == native.results


@settings(**SLOW)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nsteps=st.integers(min_value=5, max_value=15),
    frac=st.floats(min_value=0.1, max_value=0.8),
)
def test_property_random_program_reexec(seed, nsteps, frac, tmp_path_factory):
    """REEXEC transparency for arbitrary generated programs: halt, save
    to a file, resume in a fresh session."""
    from repro.mana.session import HALTED, resume_from_checkpoint

    nranks = 4
    factory = lambda r: RandomProgram(r, nranks, seed, nsteps)
    cfg = ManaConfig.feature_2pc().but(record_replay=True)
    base = ManaSession(nranks, factory, TESTBOX, cfg).run()
    halted = ManaSession(nranks, factory, TESTBOX, cfg)
    out = halted.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * frac, action="halt")]
    )
    if out.results != [HALTED] * nranks:
        # the request landed after the end and was skipped gracefully
        assert out.results == base.results
        return
    path = tmp_path_factory.mktemp("reexec") / "img.ckpt"
    halted.save_checkpoint(path)
    resumed = resume_from_checkpoint(path, factory, TESTBOX, cfg).run()
    assert resumed.results == base.results
