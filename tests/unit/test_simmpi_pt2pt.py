"""Unit tests for the simulated MPI library: point-to-point."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MpiInvalidHandle
from repro.simmpi import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.simmpi.runner import run_native


def test_send_recv_delivers_payload():
    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            yield from lib.send(task, w, dest=1, tag=5, payload={"a": 1})
            return "sent"
        else:
            data, status = yield from lib.recv(task, w, source=0, tag=5)
            return data, status.source, status.tag

    run = run_native(2, prog)
    assert run.results[0] == "sent"
    data, src, tag = run.results[1]
    assert data == {"a": 1} and src == 0 and tag == 5
    assert run.elapsed > 0


def test_numpy_payload_and_byte_count():
    arr = np.arange(100, dtype=np.float64)

    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            yield from lib.send(task, w, 1, 0, arr)
            return None
        data, status = yield from lib.recv(task, w, 0, 0)
        return data, status.count

    run = run_native(2, prog)
    data, count = run.results[1]
    np.testing.assert_array_equal(data, arr)
    assert count == arr.nbytes


def test_any_source_any_tag_wildcards():
    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank in (0, 1):
            yield from lib.send(task, w, 2, tag=10 + task.world_rank,
                                payload=task.world_rank)
            return None
        got = []
        for _ in range(2):
            data, status = yield from lib.recv(task, w, ANY_SOURCE, ANY_TAG)
            got.append((data, status.source, status.tag))
        return sorted(got)

    run = run_native(3, prog)
    assert run.results[2] == [(0, 0, 10), (1, 1, 11)]


def test_message_ordering_same_pair_same_tag():
    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            for i in range(10):
                yield from lib.send(task, w, 1, tag=0, payload=i)
            return None
        got = []
        for _ in range(10):
            data, _ = yield from lib.recv(task, w, 0, 0)
            got.append(data)
        return got

    run = run_native(2, prog)
    assert run.results[1] == list(range(10))


def test_isend_completes_eagerly_irecv_waits():
    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            req = yield from lib.isend(task, w, 1, 0, "hi")
            flag, _ = lib.test(task, req)
            return flag  # eager send: locally complete at injection
        req = lib.irecv(task, w, 0, 0)
        flag_before, _ = lib.test(task, req)
        data = yield from lib.wait(task, req)
        return flag_before, data

    run = run_native(2, prog)
    assert run.results[0] is True
    flag_before, data = run.results[1]
    assert flag_before is False
    assert data == "hi"


def test_unexpected_message_queue_then_late_recv():
    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            yield from lib.send(task, w, 1, 3, "early")
            return None
        # let the message land in the unexpected queue before we recv
        from repro.des.syscalls import Advance
        yield Advance(1.0)
        flag, status = lib.iprobe(task, w, 0, 3)
        data, _ = yield from lib.recv(task, w, 0, 3)
        return flag, status.count, data

    run = run_native(2, prog)
    flag, count, data = run.results[1]
    assert flag is True
    assert count == len("early".encode())
    assert data == "early"


def test_iprobe_does_not_consume():
    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            yield from lib.send(task, w, 1, 0, "x")
            return None
        from repro.des.syscalls import Advance
        yield Advance(1.0)
        f1, _ = lib.iprobe(task, w, 0, 0)
        f2, _ = lib.iprobe(task, w, 0, 0)
        data, _ = yield from lib.recv(task, w, 0, 0)
        f3, _ = lib.iprobe(task, w, 0, 0)
        return f1, f2, data, f3

    run = run_native(2, prog)
    assert run.results[1] == (True, True, "x", False)


def test_iprobe_cannot_see_message_matched_by_posted_irecv():
    """The Section III-B subtlety: a message matched by an already-posted
    MPI_Irecv is invisible to MPI_Iprobe."""

    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            from repro.des.syscalls import Advance
            yield Advance(1.0)
            yield from lib.send(task, w, 1, 0, "y")
            return None
        req = lib.irecv(task, w, 0, 0)  # posted before the send happens
        from repro.des.syscalls import Advance
        yield Advance(5.0)  # message has arrived and matched the irecv
        flag, _ = lib.iprobe(task, w, 0, 0)
        data = yield from lib.wait(task, req)
        return flag, data

    run = run_native(2, prog)
    flag, data = run.results[1]
    assert flag is False  # invisible to iprobe
    assert data == "y"


def test_proc_null_send_recv_complete_immediately():
    def prog(lib, task):
        w = lib.comm_world
        yield from lib.send(task, w, PROC_NULL, 0, "ignored")
        data, status = yield from lib.recv(task, w, PROC_NULL, 0)
        return data, status.count

    run = run_native(1, prog)
    assert run.results[0] == (None, 0)


def test_self_send_recv():
    def prog(lib, task):
        w = lib.comm_world
        req = yield from lib.isend(task, w, 0, 9, "self")
        data, _ = yield from lib.recv(task, w, 0, 9)
        yield from lib.wait(task, req)
        return data

    run = run_native(1, prog)
    assert run.results[0] == "self"


def test_recv_without_send_deadlocks_with_report():
    def prog(lib, task):
        data, _ = yield from lib.recv(task, lib.comm_world, source=1, tag=0)
        return data

    with pytest.raises(DeadlockError, match="MPI_Wait"):
        run_native(2, prog)


def test_waitall_order():
    def prog(lib, task):
        w = lib.comm_world
        if task.world_rank == 0:
            for i in range(4):
                yield from lib.send(task, w, 1, tag=i, payload=i * 10)
            return None
        reqs = [lib.irecv(task, w, 0, tag=i) for i in range(4)]
        out = []
        for r in reqs:
            out.append((yield from lib.wait(task, r)))
        return out

    run = run_native(2, prog)
    assert run.results[1] == [0, 10, 20, 30]


def test_destroyed_library_rejects_calls():
    def prog(lib, task):
        yield from lib.barrier(task, lib.comm_world)
        return None

    run = run_native(2, prog)
    run.lib.destroy()
    with pytest.raises(MpiInvalidHandle, match="destroyed"):
        run.lib.iprobe(
            run.lib.make_task(run.sched.procs[0], 0), run.lib.comm_world, 0, 0
        )


def test_lower_half_alloc_mem_lost_on_destroy():
    def prog(lib, task):
        yield from lib.barrier(task, lib.comm_world)
        return lib.alloc_mem(4096)

    run = run_native(1, prog)
    mem = run.results[0]
    assert run.lib._lh_mem[mem.mem_id] is mem
    run.lib.destroy()
    # a fresh incarnation has no record of the allocation
    from repro.des import Scheduler
    from repro.simnet import Network
    from repro.simmpi import MpiLibrary
    from repro.hosts import TESTBOX
    sched2 = Scheduler()
    lib2 = MpiLibrary(sched2, Network(sched2, TESTBOX, 1), TESTBOX, incarnation=1)
    assert mem.mem_id not in lib2._lh_mem
