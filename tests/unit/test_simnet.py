"""Unit tests for the network substrate."""

import pytest

from repro.des import Scheduler
from repro.errors import SimulationError
from repro.hosts import TESTBOX, CORI_HASWELL
from repro.simnet import Message, Network
from repro.simnet.oob import COORDINATOR_ID, OobChannel


def make_net(nranks=4, machine=TESTBOX):
    sched = Scheduler()
    net = Network(sched, machine, nranks)
    return sched, net


def attach_sink(net, rank, sink):
    net.attach_endpoint(rank, sink.append)


class TestDelivery:
    def test_message_arrives_with_latency(self):
        sched, net = make_net()
        got = []
        for r in range(4):
            attach_sink(net, r, got if r == 1 else [])
        msg = Message(src=0, dst=1, context_id=0, tag=7, payload=b"x", nbytes=1)
        net.inject(msg)
        assert net.in_flight_count() == 1
        sched.run()
        assert [m.tag for m in got] == [7]
        assert net.in_flight_count() == 0
        # same node (TESTBOX has 8 ranks/node) -> intranode latency
        assert sched.now >= TESTBOX.intranode_latency

    def test_internode_slower_than_intranode(self):
        # ranks 0 and 1 share a node; ranks 0 and 32 do not (Haswell: 32/node)
        t_intra = CORI_HASWELL.intranode_latency
        t_inter = CORI_HASWELL.net_latency
        assert t_inter > t_intra
        sched = Scheduler()
        net = Network(sched, CORI_HASWELL, 64)
        times = {}
        for r in range(64):
            net.attach_endpoint(r, lambda m, r=r: times.__setitem__(r, sched.now))
        net.inject(Message(src=0, dst=1, context_id=0, tag=0, payload=None, nbytes=0))
        net.inject(Message(src=0, dst=32, context_id=0, tag=0, payload=None, nbytes=0))
        sched.run()
        assert times[1] < times[32]

    def test_bandwidth_term_scales_with_size(self):
        sched, net = make_net(2)
        times = {}
        net.attach_endpoint(0, lambda m: None)
        net.attach_endpoint(1, lambda m: times.__setitem__(m.tag, sched.now))
        net.inject(Message(src=0, dst=1, context_id=0, tag=1, payload=None, nbytes=8))
        sched.run()
        t_small = times[1]
        big = 10_000_000
        net.inject(Message(src=0, dst=1, context_id=0, tag=2, payload=None, nbytes=big))
        sched.run()
        t_big = times[2] - t_small
        assert t_big > big / TESTBOX.intranode_bandwidth

    def test_fifo_per_pair(self):
        sched, net = make_net(2)
        got = []
        net.attach_endpoint(0, lambda m: None)
        net.attach_endpoint(1, got.append)
        # a big message injected first must still arrive first (non-overtaking)
        net.inject(Message(src=0, dst=1, context_id=0, tag=1, payload=None,
                           nbytes=50_000_000))
        net.inject(Message(src=0, dst=1, context_id=0, tag=2, payload=None, nbytes=0))
        sched.run()
        assert [m.tag for m in got] == [1, 2]

    def test_inject_requires_endpoint(self):
        sched, net = make_net(2)
        with pytest.raises(SimulationError, match="endpoint"):
            net.inject(Message(src=0, dst=1, context_id=0, tag=0,
                               payload=None, nbytes=0))


class TestInFlightAccounting:
    def test_in_flight_bytes_by_pair(self):
        sched, net = make_net(3)
        for r in range(3):
            net.attach_endpoint(r, lambda m: None)
        net.inject(Message(src=0, dst=1, context_id=0, tag=0, payload=None, nbytes=10))
        net.inject(Message(src=0, dst=2, context_id=0, tag=0, payload=None, nbytes=20))
        assert net.in_flight_bytes() == 30
        assert net.in_flight_bytes(src=0, dst=1) == 10
        assert net.in_flight_bytes(dst=2) == 20
        sched.run()
        assert net.in_flight_bytes() == 0
        net.assert_empty()

    def test_assert_empty_raises_with_pending(self):
        sched, net = make_net(2)
        net.attach_endpoint(0, lambda m: None)
        net.attach_endpoint(1, lambda m: None)
        net.inject(Message(src=0, dst=1, context_id=0, tag=0, payload=None, nbytes=1))
        with pytest.raises(SimulationError, match="not empty"):
            net.assert_empty()

    def test_purge_drops_in_flight(self):
        sched, net = make_net(2)
        got = []
        net.attach_endpoint(0, lambda m: None)
        net.attach_endpoint(1, got.append)
        net.inject(Message(src=0, dst=1, context_id=0, tag=0, payload=None, nbytes=1))
        assert net.purge_in_flight() == 1
        sched.run()
        assert got == []
        net.assert_empty()

    def test_reset_endpoints_allows_reattach(self):
        sched, net = make_net(2)
        net.attach_endpoint(0, lambda m: None)
        with pytest.raises(SimulationError):
            net.attach_endpoint(0, lambda m: None)
        net.reset_endpoints()
        net.attach_endpoint(0, lambda m: None)  # no raise

    def test_stats_accumulate(self):
        sched, net = make_net(2)
        net.attach_endpoint(0, lambda m: None)
        net.attach_endpoint(1, lambda m: None)
        for i in range(5):
            net.inject(Message(src=0, dst=1, context_id=0, tag=i,
                               payload=None, nbytes=100))
        sched.run()
        assert net.stats.messages == 5
        assert net.stats.bytes == 500


class TestOob:
    def test_coordinator_round_trip(self):
        sched = Scheduler()
        oob = OobChannel(sched)
        coord_box = oob.register(COORDINATOR_ID)
        rank_box = oob.register(0)

        def coordinator():
            proc = sched.procs[0]
            msg = yield from coord_box.get(proc)
            assert msg == ("hello", 0)
            oob.send(0, "ack")

        sched.spawn(coordinator(), "coord", daemon=True)
        got = []

        def rank():
            proc = sched.procs[1]
            oob.send(COORDINATOR_ID, ("hello", 0))
            reply = yield from rank_box.get(proc)
            got.append((sched.now, reply))

        sched.spawn(rank(), "rank0")
        sched.run()
        assert got[0][1] == "ack"
        # two OOB hops must cost at least twice the channel latency
        assert got[0][0] >= 2 * oob.latency

    def test_coordinator_serializes_incasts(self):
        sched = Scheduler()
        oob = OobChannel(sched)
        box = oob.register(COORDINATOR_ID)
        arrivals = []

        def coordinator():
            proc = sched.procs[0]
            for _ in range(10):
                yield from box.get(proc)
                arrivals.append(sched.now)

        sched.spawn(coordinator(), "coord")
        for i in range(10):
            oob.send(COORDINATOR_ID, i)
        sched.run()
        # service time spaces the arrivals out
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g >= oob.coordinator_service_time * 0.99 for g in gaps)
