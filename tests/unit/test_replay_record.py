"""ReplayLog.record snapshot semantics: the immutability fast path.

``record()`` must isolate the log from later mutation of aliased
application buffers (the recorded value may share structure with a
payload the app overwrites after the call returns), without paying
``copy.deepcopy`` for the overwhelmingly common case — scalars, strings,
and tuples thereof — where aliasing is unobservable.
"""

from __future__ import annotations

import pytest

from repro.errors import ManaError
from repro.mana.replay import ReplayLog, _fully_immutable, _snapshot


def test_atomic_values_recorded_by_reference():
    for value in (None, True, 42, 2.5, 1 + 2j, "tag", b"payload"):
        assert _snapshot(value) is value


def test_immutable_tuples_recorded_by_reference():
    value = (1, "x", (2.0, None), b"raw")
    assert _snapshot(value) is value
    assert _fully_immutable(value)


def test_mutable_values_are_copied():
    for value in ([1, 2], {"k": 1}, {1, 2}, bytearray(b"x")):
        got = _snapshot(value)
        assert got == value
        assert got is not value
    # a tuple holding a mutable element loses the fast path
    value = (1, [2, 3])
    got = _snapshot(value)
    assert got == value
    assert got is not value
    assert got[1] is not value[1]  # the copy is deep


def test_aliased_buffer_mutation_is_isolated():
    """The satellite's regression case: the app mutates a buffer the
    recorded result aliases; replay must see the recorded value."""
    log = ReplayLog()
    payload = [0, 1, 2]
    log.record("recv", (payload, {"source": 1}))
    payload.append(99)            # app reuses its buffer
    payload[0] = -1
    log.replaying = True
    got = log.next("recv")
    assert got == ([0, 1, 2], {"source": 1})


def test_deepcopy_equivalence_for_aliased_graphs():
    """The fast path must be *behaviorally* identical to the old
    unconditional deepcopy: same values out, same isolation — only
    object identity for fully-immutable values may differ (and deepcopy
    returned those by reference too)."""
    import copy

    shared = [1, 2]
    value = {"a": shared, "b": shared}
    got = _snapshot(value)
    assert got == copy.deepcopy(value)
    assert got["a"] is got["b"]   # internal aliasing preserved
    shared.append(3)
    assert got["a"] == [1, 2]     # external aliasing severed


def test_record_rejected_while_replaying():
    log = ReplayLog()
    log.record("send", None)
    log.replaying = True
    with pytest.raises(ManaError):
        log.record("send", None)
