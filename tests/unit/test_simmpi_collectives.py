"""Unit tests for collectives: correctness against sequential references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmpi import MAX, MAXLOC, MIN, MINLOC, PROD, SUM
from repro.simmpi.ops import ReductionOp
from repro.simmpi.runner import run_native

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


@pytest.mark.parametrize("p", SIZES)
def test_barrier_synchronizes(p):
    """No rank may leave the barrier before the last rank has entered."""
    enter, leave = {}, {}

    def prog(lib, task):
        from repro.des.syscalls import Advance
        yield Advance(task.world_rank * 1.0)  # staggered arrival
        enter[task.world_rank] = lib.sched.now
        yield from lib.barrier(task, lib.comm_world)
        leave[task.world_rank] = lib.sched.now
        return None

    run_native(p, prog)
    last_enter = max(enter.values())
    assert all(t >= last_enter for t in leave.values())


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_to_all(p, root):
    root = 0 if root == 0 else p - 1

    def prog(lib, task):
        data = {"v": 42} if task.world_rank == root else None
        out = yield from lib.bcast(task, lib.comm_world, data, root)
        return out

    run = run_native(p, prog)
    assert all(r == {"v": 42} for r in run.results)


def test_bcast_root_returns_before_leaves_receive():
    """Section III-D: the root of a Bcast is not synchronizing."""
    times = {}

    def prog(lib, task):
        from repro.des.syscalls import Advance
        if task.world_rank != 0:
            yield Advance(100.0)  # leaves arrive very late
        yield from lib.bcast(task, lib.comm_world, "x", 0)
        times[task.world_rank] = lib.sched.now
        return None

    run_native(4, prog)
    assert times[0] < 1.0          # root exits immediately
    assert all(times[r] >= 100.0 for r in (1, 2, 3))


@pytest.mark.parametrize("p", SIZES)
def test_reduce_sum_matches_reference(p):
    def prog(lib, task):
        data = np.arange(8, dtype=np.int64) * (task.world_rank + 1)
        out = yield from lib.reduce(task, lib.comm_world, data, SUM, root=0)
        return out

    run = run_native(p, prog)
    expected = np.arange(8, dtype=np.int64) * sum(range(1, p + 1))
    np.testing.assert_array_equal(run.results[0], expected)
    assert all(r is None for r in run.results[1:])


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("op,fold", [
    (SUM, lambda xs: sum(xs)),
    (MAX, lambda xs: max(xs)),
    (MIN, lambda xs: min(xs)),
    (PROD, lambda xs: int(np.prod(xs))),
])
def test_allreduce_scalar(p, op, fold):
    def prog(lib, task):
        out = yield from lib.allreduce(task, lib.comm_world, task.world_rank + 1, op)
        return out

    run = run_native(p, prog)
    expected = fold(range(1, p + 1))
    assert all(r == expected for r in run.results)


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_numpy_array(p):
    def prog(lib, task):
        data = np.full(16, float(task.world_rank))
        out = yield from lib.allreduce(task, lib.comm_world, data, SUM)
        return out

    run = run_native(p, prog)
    expected = np.full(16, float(sum(range(p))))
    for r in run.results:
        np.testing.assert_allclose(r, expected)


def test_allreduce_maxloc():
    values = [3.0, 9.0, 1.0, 9.0]

    def prog(lib, task):
        pair = (values[task.world_rank], task.world_rank)
        out = yield from lib.allreduce(task, lib.comm_world, pair, MAXLOC)
        return out

    run = run_native(4, prog)
    assert all(r == (9.0, 1) for r in run.results)  # tie -> lower index


def test_allreduce_minloc():
    values = [3.0, 9.0, 1.0, 1.0]

    def prog(lib, task):
        pair = (values[task.world_rank], task.world_rank)
        out = yield from lib.allreduce(task, lib.comm_world, pair, MINLOC)
        return out

    run = run_native(4, prog)
    assert all(r == (1.0, 2) for r in run.results)


def test_non_commutative_reduce_preserves_rank_order():
    concat = ReductionOp("CONCAT", lambda a, b: a + b, commutative=False)

    def prog(lib, task):
        out = yield from lib.reduce(
            task, lib.comm_world, [task.world_rank], concat, root=0
        )
        return out

    run = run_native(6, prog)
    assert run.results[0] == [0, 1, 2, 3, 4, 5]


def test_non_commutative_allreduce():
    concat = ReductionOp("CONCAT", lambda a, b: a + b, commutative=False)

    def prog(lib, task):
        out = yield from lib.allreduce(task, lib.comm_world, [task.world_rank], concat)
        return out

    run = run_native(5, prog)
    assert all(r == [0, 1, 2, 3, 4] for r in run.results)


@pytest.mark.parametrize("p", SIZES)
def test_gather_and_scatter_roundtrip(p):
    def prog(lib, task):
        gathered = yield from lib.gather(
            task, lib.comm_world, f"r{task.world_rank}", root=0
        )
        if task.world_rank == 0:
            assert gathered == [f"r{i}" for i in range(p)]
            tosend = [x.upper() for x in gathered]
        else:
            tosend = None
        mine = yield from lib.scatter(task, lib.comm_world, tosend, root=0)
        return mine

    run = run_native(p, prog)
    assert run.results == [f"R{i}" for i in range(p)]


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "mid"])
def test_gather_scatter_nonzero_root(p, root):
    root = 0 if root == 0 else p // 2

    def prog(lib, task):
        gathered = yield from lib.gather(task, lib.comm_world, task.world_rank, root)
        data = [x * 2 for x in gathered] if task.world_rank == root else None
        mine = yield from lib.scatter(task, lib.comm_world, data, root)
        return gathered, mine

    run = run_native(p, prog)
    for r, (gathered, mine) in enumerate(run.results):
        if r == root:
            assert gathered == list(range(p))
        else:
            assert gathered is None
        assert mine == r * 2


@pytest.mark.parametrize("p", SIZES)
def test_allgather(p):
    def prog(lib, task):
        out = yield from lib.allgather(task, lib.comm_world, task.world_rank ** 2)
        return out

    run = run_native(p, prog)
    expected = [i ** 2 for i in range(p)]
    assert all(r == expected for r in run.results)


@pytest.mark.parametrize("p", SIZES)
def test_alltoall(p):
    def prog(lib, task):
        data = [(task.world_rank, j) for j in range(p)]
        out = yield from lib.alltoall(task, lib.comm_world, data)
        return out

    run = run_native(p, prog)
    for i, row in enumerate(run.results):
        assert row == [(j, i) for j in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_scan_inclusive(p):
    def prog(lib, task):
        out = yield from lib.scan(task, lib.comm_world, task.world_rank + 1, SUM)
        return out

    run = run_native(p, prog)
    assert run.results == [sum(range(1, i + 2)) for i in range(p)]


@pytest.mark.parametrize("p", [2, 4, 6, 8])
def test_reduce_scatter_block(p):
    def prog(lib, task):
        data = [np.array([task.world_rank * 100 + j]) for j in range(p)]
        out = yield from lib.reduce_scatter_block(task, lib.comm_world, data, SUM)
        return out

    run = run_native(p, prog)
    total_rank = sum(r * 100 for r in range(p))
    for j, r in enumerate(run.results):
        np.testing.assert_array_equal(r, np.array([total_rank + j * p]))


def test_consecutive_collectives_do_not_cross_match():
    def prog(lib, task):
        w = lib.comm_world
        a = yield from lib.allreduce(task, w, 1, SUM)
        b = yield from lib.allreduce(task, w, 10, SUM)
        c = yield from lib.bcast(task, w, "z" if task.world_rank == 2 else None, 2)
        return a, b, c

    run = run_native(4, prog)
    assert all(r == (4, 40, "z") for r in run.results)


class TestNonBlockingCollectives:
    def test_ibarrier_overlaps_compute(self):
        def prog(lib, task):
            from repro.des.syscalls import Advance
            req = yield from lib.ibarrier(task, lib.comm_world)
            yield Advance(1.0)  # overlap
            yield from lib.wait(task, req)
            return lib.sched.now

        run = run_native(4, prog)
        assert all(t >= 1.0 for t in run.results)

    def test_ibcast_result_via_wait(self):
        def prog(lib, task):
            data = "payload" if task.world_rank == 0 else None
            req = yield from lib.ibcast(task, lib.comm_world, data, 0)
            out = yield from lib.wait(task, req)
            return out

        run = run_native(4, prog)
        assert all(r == "payload" for r in run.results)

    def test_iallreduce_test_then_wait(self):
        def prog(lib, task):
            from repro.des.syscalls import Advance
            req = yield from lib.iallreduce(task, lib.comm_world, 2, SUM)
            flag, _ = lib.test(task, req)
            yield Advance(10.0)
            flag_late, val = lib.test(task, req)
            return flag_late, val

        run = run_native(4, prog)
        assert all(r == (True, 8) for r in run.results)

    def test_two_icolls_in_flight_on_same_comm(self):
        def prog(lib, task):
            r1 = yield from lib.iallreduce(task, lib.comm_world, 1, SUM)
            r2 = yield from lib.iallreduce(task, lib.comm_world, 5, SUM)
            v2 = yield from lib.wait(task, r2)
            v1 = yield from lib.wait(task, r1)
            return v1, v2

        run = run_native(4, prog)
        assert all(r == (4, 20) for r in run.results)

    def test_ialltoall(self):
        def prog(lib, task):
            data = [task.world_rank * 10 + j for j in range(3)]
            req = yield from lib.ialltoall(task, lib.comm_world, data)
            out = yield from lib.wait(task, req)
            return out

        run = run_native(3, prog)
        for i, row in enumerate(run.results):
            assert row == [j * 10 + i for j in range(3)]


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=12),
    n=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_allreduce_equals_numpy_sum(p, n, seed):
    rng = np.random.default_rng(seed)
    contribs = [rng.normal(size=n) for _ in range(p)]

    def prog(lib, task):
        out = yield from lib.allreduce(
            task, lib.comm_world, contribs[task.world_rank].copy(), SUM
        )
        return out

    run = run_native(p, prog)
    # MPI requires all ranks of an allreduce to receive identical results
    for r in run.results[1:]:
        np.testing.assert_array_equal(r, run.results[0])
    # and the value must match a reference sum up to association order
    expected = np.sum(contribs, axis=0)
    np.testing.assert_allclose(run.results[0], expected, rtol=1e-9, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=10),
    root=st.integers(min_value=0, max_value=9),
)
def test_property_bcast_any_root(p, root):
    root = root % p

    def prog(lib, task):
        data = ("blob", root) if task.world_rank == root else None
        out = yield from lib.bcast(task, lib.comm_world, data, root)
        return out

    run = run_native(p, prog)
    assert all(r == ("blob", root) for r in run.results)
