"""Unit tests for MANA's component modules: virtual tables, counters,
drain buffer, request manager, Fortran constants, GIDs, FS register."""

import pytest

from repro.errors import DrainError, ManaError
from repro.hosts import CORI_HASWELL, CORI_KNL, TESTBOX
from repro.mana.buffers import BufferedMessage, DrainBuffer
from repro.mana.config import FsTier, ManaConfig, VtableBackend
from repro.mana.counters import PairwiseCounters
from repro.mana.fortran import (
    FortranAddr,
    FortranConstantResolver,
    FortranLinkage,
)
from repro.mana.binding import LowerHalfBinding
from repro.mana.fsreg import fs_switch_cost, lower_half_call_cost, resolve_fs_tier
from repro.mana.gid import comm_gid, comm_gid_from_world_ranks
from repro.mana.requests import NullMark, VirtualRequestManager, VReqKind
from repro.mana.vtables import VirtualTable
from repro.simmpi.comm import RealComm
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG, Status
from repro.simmpi.group import Group
from repro.simmpi.request import RealRequest, RequestKind

CFG = ManaConfig.feature_2pc()


class TestVirtualTable:
    def test_create_lookup_delete(self):
        t = VirtualTable("t", LowerHalfBinding(CFG, TESTBOX))
        vid, c1 = t.create("real-A")
        real, c2 = t.lookup(vid)
        assert real == "real-A"
        assert c1 > 0 and c2 > 0
        t.delete(vid)
        assert vid not in t

    def test_lookup_unmapped_raises(self):
        t = VirtualTable("t", LowerHalfBinding(CFG, TESTBOX))
        with pytest.raises(ManaError, match="not mapped"):
            t.lookup(99)

    def test_rebind_requires_existing(self):
        t = VirtualTable("t", LowerHalfBinding(CFG, TESTBOX))
        vid, _ = t.create("old")
        t.rebind(vid, "new")
        assert t.lookup(vid)[0] == "new"
        with pytest.raises(ManaError):
            t.rebind(12345, "x")

    def test_vids_never_reused(self):
        t = VirtualTable("t", LowerHalfBinding(CFG, TESTBOX))
        vid1, _ = t.create("a")
        t.delete(vid1)
        vid2, _ = t.create("b")
        assert vid2 != vid1

    def test_map_cost_grows_with_size_hash_does_not(self):
        map_cfg = CFG.but(vtable=VtableBackend.ORDERED_MAP)
        hash_cfg = CFG.but(vtable=VtableBackend.HASH)
        tm = VirtualTable("m", LowerHalfBinding(map_cfg, TESTBOX))
        th = VirtualTable("h", LowerHalfBinding(hash_cfg, TESTBOX))
        for _ in range(1024):
            tm.create("x")
            th.create("x")
        _, map_cost = tm.lookup(1)
        _, hash_cost = th.lookup(1)
        assert map_cost > hash_cost
        tm_small = VirtualTable("m2", LowerHalfBinding(map_cfg, TESTBOX))
        tm_small.create("x")
        _, small_cost = tm_small.lookup(1)
        assert map_cost > small_cost

    def test_peak_size_tracked(self):
        t = VirtualTable("t", LowerHalfBinding(CFG, TESTBOX))
        vids = [t.create("x")[0] for _ in range(5)]
        for v in vids:
            t.delete(v)
        assert t.peak_size == 5
        assert len(t) == 0


class TestPairwiseCounters:
    def test_send_receive_accounting(self):
        c = PairwiseCounters(4)
        c.on_send(2, 100)
        c.on_send(2, 50)
        c.on_receive(1, 30)
        assert c.sent[2] == 150 and c.sent_msgs[2] == 2
        assert c.received[1] == 30
        assert c.total_sent() == (150, 2) and c.total_received() == (30, 1)

    def test_deficit_computation(self):
        c = PairwiseCounters(3)
        c.on_receive(0, 40)
        # what each peer claims it sent to me: (bytes, messages)
        expected = [(100, 2), (0, 0), (25, 1)]
        assert c.deficit_from(expected) == {0: (60, 1), 2: (25, 1)}

    def test_zero_byte_messages_are_visible(self):
        # a barrier token has zero bytes but must still be drained
        c = PairwiseCounters(2)
        assert c.deficit_from([(0, 0), (0, 1)]) == {1: (0, 1)}

    def test_over_receive_is_an_error(self):
        c = PairwiseCounters(2)
        c.on_receive(1, 10)
        with pytest.raises(DrainError, match="more than"):
            c.deficit_from([(0, 0), (5, 1)])

    def test_snapshot_restore_roundtrip(self):
        c = PairwiseCounters(3)
        c.on_send(1, 10)
        c.on_receive(2, 20)
        snap = c.snapshot()
        c2 = PairwiseCounters(3)
        c2.restore(snap)
        assert c2.sent == c.sent and c2.received == c.received


class TestDrainBuffer:
    def _msg(self, comm_vid=1, src=0, tag=5, payload="p", nbytes=1):
        return BufferedMessage(comm_vid, src, tag, payload, nbytes)

    def test_match_exact(self):
        b = DrainBuffer()
        b.put(self._msg())
        out = b.match(1, 0, 5)
        assert out is not None
        payload, st = out
        assert payload == "p" and st.source == 0 and st.count == 1
        assert b.match(1, 0, 5) is None  # consumed

    def test_wildcards(self):
        b = DrainBuffer()
        b.put(self._msg(src=3, tag=9))
        assert b.match(1, ANY_SOURCE, ANY_TAG) is not None

    def test_fifo_order_per_key(self):
        b = DrainBuffer()
        b.put(self._msg(payload="first"))
        b.put(self._msg(payload="second"))
        assert b.match(1, 0, 5)[0] == "first"
        assert b.match(1, 0, 5)[0] == "second"

    def test_no_cross_comm_match(self):
        b = DrainBuffer()
        b.put(self._msg(comm_vid=1))
        assert b.match(2, ANY_SOURCE, ANY_TAG) is None

    def test_nbytes_and_snapshot(self):
        b = DrainBuffer()
        b.put(self._msg(nbytes=10))
        b.put(self._msg(nbytes=20))
        assert b.nbytes() == 30
        b2 = DrainBuffer()
        b2.restore(b.snapshot())
        assert len(b2) == 2


class TestVirtualRequestManager:
    def test_two_step_retirement(self):
        """The Section III-A algorithm, step by step."""
        mgr = VirtualRequestManager(LowerHalfBinding(CFG, TESTBOX))
        real = RealRequest(RequestKind.RECV, 2, 0, 1)
        entry, _ = mgr.create(VReqKind.IRECV, comm_vid=1, real=real,
                              peer=0, tag=1)
        assert entry in [e for _v, e in mgr.table.items()]
        # step one: internal completion (e.g. discovered by the drain)
        mgr.complete_internally(entry, "data", Status(source=0, tag=1, count=4))
        assert isinstance(entry.real, NullMark)
        assert entry.vid in mgr.table
        # step two: the application's next Test/Wait retires it
        cost = mgr.retire(entry)
        assert cost > 0
        assert entry.vid not in mgr.table

    def test_double_internal_completion_rejected(self):
        mgr = VirtualRequestManager(LowerHalfBinding(CFG, TESTBOX))
        entry, _ = mgr.create(VReqKind.IRECV, 1, None)
        mgr.complete_internally(entry, "x", None)
        with pytest.raises(ManaError, match="twice"):
            mgr.complete_internally(entry, "y", None)

    def test_no_gc_keeps_entries(self):
        mgr = VirtualRequestManager(LowerHalfBinding(CFG.but(request_gc=False), TESTBOX))
        entry, _ = mgr.create(VReqKind.ISEND, 1, None)
        mgr.retire(entry)
        assert entry.vid in mgr.table  # the growth pathology
        assert entry.consumed

    def test_pending_irecvs_filter(self):
        mgr = VirtualRequestManager(LowerHalfBinding(CFG, TESTBOX))
        live = RealRequest(RequestKind.RECV, 2, 0, 1)
        e1, _ = mgr.create(VReqKind.IRECV, 1, real=live)
        e2, _ = mgr.create(VReqKind.IRECV, 1, real=None)
        mgr.complete_internally(e2, "done", None)
        e3, _ = mgr.create(VReqKind.ISEND, 1, real=live)
        pending = mgr.pending_irecvs()
        assert pending == [e1]

    def test_snapshot_restore(self):
        mgr = VirtualRequestManager(LowerHalfBinding(CFG, TESTBOX))
        live = RealRequest(RequestKind.RECV, 2, 3, 7)
        e1, _ = mgr.create(VReqKind.IRECV, 1, real=live, peer=3, tag=7)
        e2, _ = mgr.create(VReqKind.ICOLL, 1, real=live, icoll_index=0)
        mgr.complete_internally(e2, "payload", None)
        snap = mgr.snapshot()
        mgr2 = VirtualRequestManager(LowerHalfBinding(CFG, TESTBOX))
        mgr2.restore(snap)
        r1, _ = mgr2.lookup(e1.vid)
        r2, _ = mgr2.lookup(e2.vid)
        assert r1.peer == 3 and r1.tag == 7 and r1.real is None  # re-post me
        assert isinstance(r2.real, NullMark) and r2.real.payload == "payload"
        # new vids allocate past restored ones
        e3, _ = mgr2.create(VReqKind.ISEND, 1, None)
        assert e3.vid > max(e1.vid, e2.vid)


class TestFortranConstants:
    def test_resolution_of_named_constant(self):
        linkage = FortranLinkage(0)
        resolver = FortranConstantResolver(linkage)
        addr = linkage.address_of("MPI_IN_PLACE")
        from repro.simmpi.constants import IN_PLACE

        assert resolver.resolve(addr) is IN_PLACE
        assert resolver.translations == 1

    def test_ordinary_values_pass_through(self):
        resolver = FortranConstantResolver(FortranLinkage(0))
        assert resolver.resolve(42) == 42
        assert resolver.resolve("x") == "x"

    def test_stale_incarnation_address_detected(self):
        """The Section III-F corner case: after restart the constants
        live at new addresses; an unrebound resolver must not silently
        misinterpret them."""
        old = FortranLinkage(0)
        new = FortranLinkage(1)
        resolver = FortranConstantResolver(new)
        with pytest.raises(ManaError, match="stale"):
            resolver.resolve(old.address_of("MPI_STATUS_IGNORE"))

    def test_rebind_after_restart(self):
        old = FortranLinkage(0)
        resolver = FortranConstantResolver(old)
        new = FortranLinkage(1)
        resolver.rebind(new)
        from repro.simmpi.constants import STATUS_IGNORE

        assert resolver.resolve(new.address_of("MPI_STATUS_IGNORE")) is STATUS_IGNORE

    def test_addresses_unique_per_incarnation(self):
        a = FortranLinkage(0).address_of("MPI_IN_PLACE")
        b = FortranLinkage(1).address_of("MPI_IN_PLACE")
        assert a.addr != b.addr


class TestGid:
    def test_all_members_agree_locally(self):
        world = Group(range(8))
        comm = RealComm(10, 11, Group([5, 1, 7]))
        # every member computes the same gid with no communication
        assert comm_gid(comm, world) == comm_gid_from_world_ranks((5, 1, 7))

    def test_distinct_memberships_distinct_gids(self):
        a = comm_gid_from_world_ranks((0, 1))
        b = comm_gid_from_world_ranks((0, 2))
        c = comm_gid_from_world_ranks((1, 0))  # order matters (rank order)
        assert len({a, b, c}) == 3

    def test_gid_stable_across_processes(self):
        # must be deterministic (no interpreter hash salt)
        assert comm_gid_from_world_ranks((3, 4, 5)) == comm_gid_from_world_ranks(
            (3, 4, 5)
        )


class TestFsRegister:
    def test_auto_tier_resolves_from_kernel(self):
        cfg = ManaConfig.feature_2pc().but(fs_tier=FsTier.AUTO)
        assert resolve_fs_tier(cfg, CORI_HASWELL) is FsTier.SYSCALL  # 4.12
        assert resolve_fs_tier(cfg, TESTBOX) is FsTier.FSGSBASE     # 5.15

    def test_tier_ordering(self):
        base = ManaConfig.feature_2pc()
        costs = [
            fs_switch_cost(LowerHalfBinding(base.but(fs_tier=t), CORI_HASWELL))
            for t in (FsTier.SYSCALL, FsTier.WORKAROUND, FsTier.FSGSBASE)
        ]
        assert costs[0] > costs[1] > costs[2]

    def test_knl_switch_costs_more_than_haswell(self):
        cfg = ManaConfig.master()
        # KNL's slow cores dominate Haswell's contention factor
        assert fs_switch_cost(LowerHalfBinding(cfg, CORI_KNL)) > fs_switch_cost(
            LowerHalfBinding(cfg, CORI_HASWELL)
        )

    def test_lower_half_call_is_two_switches(self):
        b = LowerHalfBinding(ManaConfig.feature_2pc(), TESTBOX)
        assert lower_half_call_cost(b, 1) == pytest.approx(2 * fs_switch_cost(b))
        assert lower_half_call_cost(b, 3) == pytest.approx(6 * fs_switch_cost(b))

    def test_binding_resolves_tier_once(self):
        cfg = ManaConfig.feature_2pc().but(fs_tier=FsTier.AUTO)
        assert LowerHalfBinding(cfg, CORI_HASWELL).fs_tier is FsTier.SYSCALL
        assert LowerHalfBinding(cfg, TESTBOX).fs_tier is FsTier.FSGSBASE

    def test_binding_describe_names_the_machine(self):
        cfg = ManaConfig.feature_2pc()
        b = LowerHalfBinding(cfg, CORI_HASWELL)
        d = b.describe()
        assert d["machine"] == CORI_HASWELL.name
        assert d["kernel"] == CORI_HASWELL.linux_kernel
        assert d["fs_tier"] == resolve_fs_tier(cfg, CORI_HASWELL).value


class TestConfigPresets:
    def test_presets_match_paper_branch_descriptions(self):
        from repro.mana.config import (
            CollectiveMode,
            CommReconstruction,
            DrainAlgorithm,
        )

        orig = ManaConfig.original()
        assert orig.collective_mode is CollectiveMode.BARRIER_ALWAYS
        assert orig.drain is DrainAlgorithm.COORDINATOR
        assert not orig.virtualize_requests
        assert orig.comm_reconstruction is CommReconstruction.REPLAY_LOG

        master = ManaConfig.master()
        assert master.collective_mode is CollectiveMode.BARRIER_ALWAYS
        assert master.drain is DrainAlgorithm.ALLTOALL
        assert master.virtualize_requests and master.request_gc
        assert master.lambda_frames

        two_pc = ManaConfig.feature_2pc()
        assert two_pc.collective_mode is CollectiveMode.HYBRID
        assert not two_pc.lambda_frames
        assert not two_pc.multi_call_rank_helper

    def test_but_returns_modified_copy(self):
        a = ManaConfig.master()
        b = a.but(request_gc=False)
        assert a.request_gc and not b.request_gc
        assert a.name == b.name
