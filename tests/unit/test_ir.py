"""Unit tests for the trace-to-IR replay compiler (``repro.ir``).

The IR layer is pure (layering rule 5): these tests drive it with
hand-built logs and classifications, plus the bridge
(``repro.mana.ir_bridge``) where the contract spans layers — RECORDED_OPS
coverage, cost-model float equality.
"""

from __future__ import annotations

import pytest

from repro.errors import ManaError, RestartError
from repro.ir import OpClassification, ReplayCursor, lower_entries
from repro.ir.build import to_entries
from repro.ir.ops import (
    KIND_COLLECTIVE,
    KIND_CONTROL,
    KIND_PT2PT,
    AdvanceOp,
    CallOp,
    CollectiveBatchOp,
    ComputeOp,
    ConstOp,
    DeadOp,
    IrProgram,
)
from repro.ir.passes import (
    BatchCollectives,
    DeadOpElim,
    DrainCheck,
    FoldCosts,
    PassPipeline,
    default_pipeline,
    drain_report,
    noop_pipeline,
)

#: a small synthetic log exercising every lowering family
LOG = [
    ("send", None),
    ("recv", (7, {"source": 1, "tag": 3})),
    ("isend", 41),          # side-effecting materializer (request slot)
    ("wait", (None, None)),
    ("allreduce", 10),
    ("allreduce", 20),
    ("barrier", None),
]

CLASSIFY = OpClassification(
    identity=frozenset({"send", "recv", "allreduce", "barrier"}),
    collectives=frozenset({"allreduce", "barrier"}),
    pt2pt=frozenset({"send", "recv", "isend"}),
)


def lowered():
    return lower_entries(LOG, rank=2, classify=CLASSIFY)


# ----------------------------------------------------------------------
# lowering + round trip
# ----------------------------------------------------------------------

def test_roundtrip_lossless():
    assert to_entries(lowered()) == LOG


def test_roundtrip_without_classification():
    prog = lower_entries(LOG, rank=0)
    assert to_entries(prog) == LOG
    # no identity set: everything keeps its materializer
    assert all(type(op) is CallOp for op in prog)


def test_lowering_classifies():
    prog = lowered()
    by_name = {op.opname: op for op in prog}
    assert type(by_name["send"]) is ConstOp
    assert type(by_name["isend"]) is CallOp
    assert by_name["isend"].needs_materialize
    assert not by_name["send"].needs_materialize
    assert by_name["allreduce"].kind == KIND_COLLECTIVE
    assert by_name["send"].kind == KIND_PT2PT
    assert prog.num_calls == prog.source_calls == len(LOG)
    assert [op.seq for op in prog] == list(range(len(LOG)))
    assert all(op.rank == 2 for op in prog)


def test_comm_gid_resolution():
    classify = OpClassification(
        identity=frozenset(),
        comm_creating=frozenset({"comm_split"}),
        gid_fn=lambda ranks: hash(ranks) & 0xFFFF,
    )
    entries = [("comm_split", ("comm", 3, (0, 1), "half")),
               ("comm_split", ("null",))]
    prog = lower_entries(entries, classify=classify)
    assert prog.ops[0].comm_gid == hash((0, 1)) & 0xFFFF
    assert prog.ops[1].comm_gid is None  # null handle: no membership


# ----------------------------------------------------------------------
# op records
# ----------------------------------------------------------------------

def test_ops_are_immutable():
    op = ConstOp("send", 0, 0)
    with pytest.raises(AttributeError):
        op.result = 5
    with pytest.raises(AttributeError):
        del op.result
    prog = IrProgram(0, (op,))
    with pytest.raises(AttributeError):
        prog.ops = ()


def test_replace_builds_new_op():
    op = CallOp("isend", 4, 1, result=9)
    op2 = op.replace(result=10)
    assert op.result == 9 and op2.result == 10
    assert type(op2) is CallOp
    assert (op2.opname, op2.seq, op2.rank) == ("isend", 4, 1)


def test_batch_width_and_validation():
    batch = CollectiveBatchOp(opnames=("allreduce", "barrier"),
                              results=(5, None))
    assert batch.width == 2
    assert batch.is_batch
    with pytest.raises(ValueError):
        CollectiveBatchOp(opnames=("a",), results=())


def test_control_ops_serve_nothing():
    assert ComputeOp(cost=1.0).width == 0
    assert AdvanceOp(cost=1.0).width == 0
    assert ComputeOp().kind == KIND_CONTROL
    prog = IrProgram(0, (ComputeOp(), ConstOp("send", 0, 0)))
    assert prog.num_calls == 1


def test_validate_rejects_dropped_calls():
    prog = lowered()
    broken = prog.with_ops(prog.ops[:-1])
    with pytest.raises(ValueError):
        broken.validate()


def test_op_histogram_unfuses_batches():
    prog = default_pipeline().run(lowered())[0]
    hist = prog.op_histogram()
    assert hist["allreduce"] == 2
    assert sum(hist.values()) == len(LOG)


# ----------------------------------------------------------------------
# passes
# ----------------------------------------------------------------------

def test_noop_pipeline_is_identity():
    prog = lowered()
    out, stats = noop_pipeline().run(prog)
    assert out is prog
    assert stats == []


def test_fold_costs_drops_yields_and_memoizes():
    calls = []

    def live(opname):
        calls.append(opname)
        return 1.5

    fold = FoldCosts(live_cost_fn=live)
    out, = (fold.run(lowered()).program,)
    assert all(not op.yield_after for op in out)
    assert all(op.live_cost == 1.5 for op in out if not op.is_control)
    # memoized per opname: 6 distinct names in LOG, not 7 calls
    assert len(calls) == len({name for name, _ in LOG})
    # second program shares the instance memo — no new resolutions
    fold.run(lowered())
    assert len(calls) == len({name for name, _ in LOG})


def test_batch_collectives_fuses_runs():
    out = BatchCollectives().run(
        FoldCosts().run(lowered()).program).program
    batches = [op for op in out if op.is_batch]
    assert len(batches) == 1
    assert batches[0].opnames == ("allreduce", "allreduce", "barrier")
    assert batches[0].results == (10, 20, None)
    out.validate()
    assert to_entries(out) == LOG  # serving stream unchanged


def test_batch_respects_comm_boundary():
    classify = OpClassification(
        identity=frozenset({"bcast"}), collectives=frozenset({"bcast"}))
    prog = lower_entries(
        [("bcast", 1), ("bcast", 2), ("bcast", 3)], classify=classify)
    # force distinct gids on the middle op
    ops = list(prog.ops)
    ops[1] = ops[1].replace(comm_gid=99)
    prog = prog.with_ops(ops)
    out = BatchCollectives(min_run=2).run(prog).program
    # the gid change splits the run: 1 + 1 + 1, no batch reaches min_run
    assert not any(op.is_batch for op in out)


def test_dead_op_elim_keeps_divergence_names():
    out = DeadOpElim().run(lowered()).program
    dead = {op.opname for op in out if type(op) is DeadOp}
    assert dead == {"send", "barrier"}
    # non-None results and side-effecting ops survive untouched
    assert type(next(op for op in out if op.opname == "recv")) is ConstOp
    assert type(next(op for op in out if op.opname == "isend")) is CallOp
    out.validate()


def test_drain_check_counts_postings():
    stats = DrainCheck().run(lowered()).stats
    assert stats["sends_posted"] == 2   # send + isend
    assert stats["recvs_posted"] == 1   # recv
    assert stats["imbalance"] == 1
    assert stats["posting_ops"] == {"send": 1, "isend": 1, "recv": 1}


def test_drain_report_aggregates():
    progs = {0: lowered(), 1: lower_entries([("recv", 1)], rank=1,
                                            classify=CLASSIFY)}
    rep = drain_report(progs)
    assert rep["sends_posted"] == 2
    assert rep["recvs_posted"] == 2
    assert rep["would_be_undrained"] == 0
    assert rep["per_rank"][1]["recvs_posted"] == 1


def test_pipeline_validates_each_pass():
    class Broken(DeadOpElim):
        name = "broken"

        def run(self, program):
            res = super().run(program)
            return type(res)(res.program.with_ops(res.program.ops[1:]),
                             res.stats)

    with pytest.raises(ValueError):
        PassPipeline((Broken(),)).run(lowered())


def test_pipeline_observe_hook():
    seen = []
    default_pipeline().run(lowered(),
                           observe=lambda name, stats: seen.append(name))
    assert seen == ["fold_costs", "batch_collectives", "dead_op_elim",
                    "drain_check"]


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------

def test_cursor_serves_in_order():
    cursor = ReplayCursor(lowered())
    for opname, value in LOG:
        assert not cursor.exhausted()
        got, needs_mat, dt = cursor.step(opname)
        assert got == value
        assert needs_mat == (opname in ("isend", "wait"))
        assert dt == 0.0  # unoptimized: every op still yields
    assert cursor.exhausted()
    with pytest.raises(ManaError):
        cursor.step("send")


def test_cursor_divergence_message_matches_legacy():
    cursor = ReplayCursor(lowered())
    with pytest.raises(RestartError) as err:
        cursor.step("recv")
    assert str(err.value) == (
        "replay divergence at call 0: application called 'recv' but the "
        "log has 'send' — the program is not deterministic"
    )


def test_optimized_cursor_folds_yields():
    prog = default_pipeline().run(lowered())[0]
    cursor = ReplayCursor(prog, yield_on_compute=False)
    dts = []
    for opname, value in LOG:
        got, _needs, dt = cursor.step(opname)
        assert got == value
        dts.append(dt)
    # every serving yield was dropped by fold_costs; only the batch
    # head could keep one, and here it had nothing to fold
    assert all(dt is None for dt in dts)
    assert cursor.exhausted()


def test_cursor_folds_control_costs_forward():
    prog = IrProgram(0, (
        ComputeOp(cost=2.0),
        AdvanceOp(seq=1, cost=0.5),
        ConstOp("send", 2, 0, None, None, 0.0, 0.0, True, KIND_PT2PT),
        ConstOp("recv", 3, 0, None, 7, 0.0, 0.0, False, KIND_PT2PT),
    ))
    cursor = ReplayCursor(prog)
    _, _, dt = cursor.step("send")
    assert dt == 2.5   # both control costs folded into the first serving op
    _, _, dt = cursor.step("recv")
    assert dt is None  # no yield, nothing pending


def test_tape_memoized_on_program():
    prog = default_pipeline().run(lowered())[0]
    c1 = ReplayCursor(prog)
    c2 = ReplayCursor(prog)
    assert prog._tape is not None
    assert c1._tape is c2._tape  # restart rounds share the flattening
    # cursor position is per-cursor state
    c1.step("send")
    assert c1.served == 1 and c2.served == 0


def test_tape_length_guard():
    prog = lowered()
    bad = IrProgram(prog.rank, prog.ops, source_calls=len(LOG))
    object.__setattr__(bad, "num_calls", len(LOG) + 1)
    with pytest.raises(ManaError):
        ReplayCursor(bad)


# ----------------------------------------------------------------------
# the bridge: cross-layer contracts
# ----------------------------------------------------------------------

def test_classification_covers_recorded_ops():
    """Every RECORDED_OPS entry lowers: identity ops to ConstOp, the
    rest to CallOp — no opname falls through unclassified."""
    from repro.mana.ir_bridge import classification
    from repro.mana.replay import RECORDED_OPS

    classify = classification()
    entries = [(name, None) for name in sorted(RECORDED_OPS)]
    prog = lower_entries(entries, classify=classify)
    assert to_entries(prog) == entries
    for op in prog:
        assert type(op) in (ConstOp, CallOp)
        assert (type(op) is ConstOp) == (op.opname in classify.identity)


def test_live_cost_matches_charging_path():
    """The folder's cost estimates resolve the exact floats the live
    pipeline charges for the same call shape (same memo-miss code)."""
    from repro.hosts import TESTBOX
    from repro.mana import ManaConfig
    from repro.mana.binding import LowerHalfBinding
    from repro.mana.ir_bridge import _VREQ_OPS_ESTIMATE, live_cost_fn
    from repro.mana.pipeline.costing import LowerHalfCosting

    binding = LowerHalfBinding(ManaConfig.feature_2pc(), TESTBOX)
    fn = live_cost_fn(binding)
    for opname in ("send", "isend", "waitall", "barrier", "allreduce"):
        expected = LowerHalfCosting.pure_cost(
            binding, lower_calls=1,
            vreq_ops=_VREQ_OPS_ESTIMATE.get(opname, 0),
            pt2pt=opname in ("send", "isend"),
        )
        assert fn(opname) == expected  # bit-identical, not approx
