"""Unit tests: workload-model internals (decomposition, scaling knobs,
Table I parameterization)."""

import numpy as np
import pytest

from repro.apps.dft_proxy import DftConfig, DftProxy, VaspWorkload
from repro.apps.kernels import factor3, lj_force_step, scf_residual_step
from repro.apps.md_proxy import AUCO_ATOMS, MdConfig, MdProxy
from repro.apps.workloads import TABLE_I, workload
from repro.hosts import CORI_HASWELL, CORI_KNL, TESTBOX


class TestKernels:
    @pytest.mark.parametrize("n", [1, 2, 6, 8, 12, 17, 32, 64, 2048])
    def test_factor3_is_exact_factorization(self, n):
        a, b, c = factor3(n)
        assert a * b * c == n
        assert a >= b >= c >= 1

    def test_factor3_prefers_cubic(self):
        assert sorted(factor3(64)) == [4, 4, 4]
        assert sorted(factor3(8)) == [2, 2, 2]

    def test_lj_step_conserves_particle_count_and_is_deterministic(self):
        rng = np.random.default_rng(1)
        p1 = rng.random((16, 3)) * 5.0
        v1 = rng.normal(0, 0.1, (16, 3))
        p2, v2 = p1.copy(), v1.copy()
        e1 = lj_force_step(p1, v1, box=5.0)
        e2 = lj_force_step(p2, v2, box=5.0)
        assert e1 == e2
        np.testing.assert_array_equal(p1, p2)
        assert np.all(p1 >= 0) and np.all(p1 < 5.0)  # periodic wrap

    def test_lj_empty_system(self):
        assert lj_force_step(np.zeros((0, 3)), np.zeros((0, 3)), 5.0) == 0.0

    def test_scf_step_contracts_toward_eigenvector(self):
        rng = np.random.default_rng(2)
        h = rng.normal(size=(12, 12))
        h = h + h.T
        c = rng.normal(size=(12, 4))
        residuals = [scf_residual_step(c, h) for _ in range(30)]
        assert residuals[-1] < residuals[0]


class TestMdModel:
    def test_atoms_per_rank_strong_scaling(self):
        p32 = MdProxy(0, MdConfig(nranks=32), CORI_HASWELL)
        p2048 = MdProxy(0, MdConfig(nranks=2048), CORI_HASWELL)
        assert p32.atoms_per_rank == AUCO_ATOMS / 32
        assert p2048.atoms_per_rank == AUCO_ATOMS / 2048
        assert p32.step_compute_seconds() > p2048.step_compute_seconds() * 30

    def test_halo_message_shrinks_slower_than_volume(self):
        """Surface-to-volume: halving atoms/rank by 8 only halves the
        face size by 4 — why communication dominates under scaling."""
        small = MdProxy(0, MdConfig(nranks=32), CORI_HASWELL)
        big = MdProxy(0, MdConfig(nranks=256), CORI_HASWELL)
        volume_ratio = small.atoms_per_rank / big.atoms_per_rank
        halo_ratio = small.halo_nbytes() / big.halo_nbytes()
        assert halo_ratio < volume_ratio

    def test_imbalance_grows_with_scale(self):
        skews_small = [MdProxy(r, MdConfig(nranks=32), CORI_HASWELL).skew
                       for r in range(32)]
        skews_big = [MdProxy(r, MdConfig(nranks=2048), CORI_HASWELL).skew
                     for r in range(0, 2048, 64)]
        assert np.std(skews_big) > np.std(skews_small)

    def test_knl_step_slower_than_haswell(self):
        cfg = MdConfig(nranks=64)
        h = MdProxy(0, cfg, CORI_HASWELL).step_compute_seconds()
        k = MdProxy(0, cfg, CORI_KNL).step_compute_seconds()
        assert 2.0 < k / h < 3.5  # the paper's ~2.8x native gap


class TestVaspModel:
    def test_table1_has_nine_distinct_cases(self):
        assert len(TABLE_I) == 9
        assert len({w.name for w in TABLE_I}) == 9

    def test_functional_cost_ordering(self):
        """HSE hybrid functionals are far costlier than semilocal DFT at
        equal electron count (why Si256_hse runs longer than PdO-class
        DFT despite fewer electrons)."""
        dft = VaspWorkload("a", 1000, 100, "DFT", "RMM", "VeryFast", (1, 1, 1))
        hse = VaspWorkload("b", 1000, 100, "HSE", "CG", "Damped", (1, 1, 1))
        assert hse.compute_scale() > 3 * dft.compute_scale()

    def test_kpoints_multiply_work(self):
        k1 = workload("PdO4")          # 1x1x1
        k27 = workload("GaAs-GW0")     # 3x3x3
        assert k27.nkpts == 27 and k1.nkpts == 1

    def test_algo_paths_have_distinct_mixes(self):
        mixes = {w.algo: tuple(sorted(w.inner_ops().items()))
                 for w in TABLE_I}
        assert len(set(mixes.values())) >= 3  # RMM/BD/CG/GW0 differ

    def test_gw0_is_alltoall_heavy(self):
        gw = workload("GaAs-GW0").inner_ops()
        dft = workload("PdO4").inner_ops()
        assert gw["alltoall"] > dft["alltoall"]

    def test_internal_cr_only_missing_for_rpa(self):
        missing = [w.name for w in TABLE_I if not w.internal_cr_supported]
        assert missing == ["GaAs-GW0"]

    def test_band_groups_auto(self):
        assert DftConfig(nranks=128, workload=TABLE_I[0]).band_groups() == 16
        assert DftConfig(nranks=4, workload=TABLE_I[0]).band_groups() == 2
        assert DftConfig(nranks=1, workload=TABLE_I[0]).band_groups() == 1
        assert DftConfig(nranks=8, workload=TABLE_I[0],
                         npar=4).band_groups() == 4

    def test_vasp6_threads_reduce_per_rank_compute(self):
        w = workload("CaPOH")
        v5 = DftProxy(0, DftConfig(nranks=8, workload=w), TESTBOX)
        v6 = DftProxy(0, DftConfig(nranks=8, workload=w, vasp6=True,
                                   omp_threads=2), TESTBOX)
        assert v6._times()["inner"] < v5._times()["inner"]

    def test_resident_bytes_scale_with_system(self):
        big = DftProxy(0, DftConfig(nranks=8, workload=workload("PdO4")),
                       TESTBOX)
        small = DftProxy(0, DftConfig(nranks=8, workload=workload("WOSiH")),
                         TESTBOX)
        assert big.resident_bytes() > small.resident_bytes()
