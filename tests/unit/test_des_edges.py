"""Unit tests: DES kernel edge cases."""

import pytest

from repro.des import Advance, Park, Scheduler
from repro.des.process import ProcState
from repro.errors import SimulationError


def test_max_events_livelock_guard():
    sched = Scheduler(max_events=100)

    def spinner():
        while True:
            yield Advance(1e-6)

    sched.spawn(spinner(), "spin")
    with pytest.raises(SimulationError, match="max_events"):
        sched.run()


def test_schedule_at_absolute_time():
    sched = Scheduler()
    fired = []
    sched.schedule_at(5.0, lambda: fired.append(sched.now))
    sched.run()
    assert fired == [5.0]


def test_schedule_at_past_clamps_to_now():
    sched = Scheduler()
    fired = []

    def prog():
        yield Advance(3.0)
        sched.schedule_at(1.0, lambda: fired.append(sched.now))

    sched.spawn(prog(), "p")
    sched.run()
    assert fired == [3.0]


def test_negative_schedule_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-1.0, lambda: None)


def test_kill_all_terminates_everything():
    sched = Scheduler()

    def parked():
        yield Park("forever")

    def looping():
        while True:
            yield Advance(1.0)

    p1 = sched.spawn(parked(), "a")
    p2 = sched.spawn(looping(), "b")
    sched.run(until=2.0)
    sched.kill_all()
    sched.run()  # no deadlock: killed procs are not "parked"
    assert p1.state is ProcState.KILLED
    assert p2.state is ProcState.KILLED


def test_try_wake_semantics():
    sched = Scheduler()

    def sleeper():
        value = yield Park("nap")
        return value

    proc = sched.spawn(sleeper(), "s")

    def waker():
        yield Advance(1.0)
        assert sched.try_wake(proc, "first") is True
        assert sched.try_wake(proc, "second") is False  # already pending

    sched.spawn(waker(), "w")
    sched.run()
    assert proc.result == "first"
    assert sched.try_wake(proc) is False  # done


def test_scheduler_not_reentrant():
    sched = Scheduler()

    def prog():
        with pytest.raises(SimulationError, match="reentrant"):
            sched.run()
        yield Advance(0.0)

    sched.spawn(prog(), "p")
    sched.run()


def test_exception_in_process_propagates_and_marks_failed():
    sched = Scheduler()

    def bad():
        yield Advance(1.0)
        raise ValueError("boom")

    proc = sched.spawn(bad(), "bad")
    with pytest.raises(ValueError, match="boom"):
        sched.run()
    assert proc.state is ProcState.FAILED
    assert isinstance(proc.error, ValueError)
