"""Unit tests: DES kernel edge cases."""

import pytest

from repro.des import Advance, Park, Scheduler
from repro.des.process import ProcState
from repro.errors import SimulationError


def test_max_events_livelock_guard():
    sched = Scheduler(max_events=100)

    def spinner():
        while True:
            yield Advance(1e-6)

    sched.spawn(spinner(), "spin")
    with pytest.raises(SimulationError, match="max_events"):
        sched.run()


def test_schedule_at_absolute_time():
    sched = Scheduler()
    fired = []
    sched.schedule_at(5.0, lambda: fired.append(sched.now))
    sched.run()
    assert fired == [5.0]


def test_schedule_at_past_clamps_to_now():
    sched = Scheduler()
    fired = []

    def prog():
        yield Advance(3.0)
        sched.schedule_at(1.0, lambda: fired.append(sched.now))

    sched.spawn(prog(), "p")
    sched.run()
    assert fired == [3.0]


def test_negative_schedule_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-1.0, lambda: None)


def test_kill_all_terminates_everything():
    sched = Scheduler()

    def parked():
        yield Park("forever")

    def looping():
        while True:
            yield Advance(1.0)

    p1 = sched.spawn(parked(), "a")
    p2 = sched.spawn(looping(), "b")
    sched.run(until=2.0)
    sched.kill_all()
    sched.run()  # no deadlock: killed procs are not "parked"
    assert p1.state is ProcState.KILLED
    assert p2.state is ProcState.KILLED


def test_try_wake_semantics():
    sched = Scheduler()

    def sleeper():
        value = yield Park("nap")
        return value

    proc = sched.spawn(sleeper(), "s")

    def waker():
        yield Advance(1.0)
        assert sched.try_wake(proc, "first") is True
        assert sched.try_wake(proc, "second") is False  # already pending

    sched.spawn(waker(), "w")
    sched.run()
    assert proc.result == "first"
    assert sched.try_wake(proc) is False  # done


def test_scheduler_not_reentrant():
    sched = Scheduler()

    def prog():
        with pytest.raises(SimulationError, match="reentrant"):
            sched.run()
        yield Advance(0.0)

    sched.spawn(prog(), "p")
    sched.run()


def test_exception_in_process_propagates_and_marks_failed():
    sched = Scheduler()

    def bad():
        yield Advance(1.0)
        raise ValueError("boom")

    proc = sched.spawn(bad(), "bad")
    with pytest.raises(ValueError, match="boom"):
        sched.run()
    assert proc.state is ProcState.FAILED
    assert isinstance(proc.error, ValueError)


# ----------------------------------------------------------------------
# event watchpoints (the chaos harness's injection mechanism)
# ----------------------------------------------------------------------

def _watch_fixture(sched_cls):
    """Three processes advancing in lockstep; watches record the exact
    event count and virtual time they fire at."""
    sched = sched_cls()

    def ticker(n):
        for _ in range(n):
            yield Advance(1.0)

    for i in range(3):
        sched.spawn(ticker(4), f"t{i}")
    return sched


@pytest.mark.parametrize("sched_cls", [Scheduler],
                         ids=["scheduler"])
def test_event_watch_fires_at_exact_count(sched_cls):
    sched = _watch_fixture(sched_cls)
    seen = []
    sched.add_event_watch(5, lambda: seen.append(
        (sched.events_run, sched.now)))
    sched.add_event_watch(7, lambda: seen.append(
        (sched.events_run, sched.now)))
    sched.run()
    # the public counters are synced when a watch fires: the callback
    # observes exactly the armed count
    assert [n for n, _t in seen] == [5, 7]
    assert seen[0][1] <= seen[1][1]


def test_event_watch_matches_reference_scheduler():
    from repro.des.scheduler import ReferenceScheduler

    def run_with_watch(sched_cls):
        sched = _watch_fixture(sched_cls)
        seen = []
        sched.add_event_watch(6, lambda: seen.append(
            (sched.events_run, sched.now)))
        sched.run()
        return seen, sched.events_run, sched.now

    fast = run_with_watch(Scheduler)
    ref = run_with_watch(ReferenceScheduler)
    assert fast == ref


def test_event_watch_in_past_rejected():
    sched = _watch_fixture(Scheduler)
    sched.run()
    with pytest.raises(SimulationError, match="in the past"):
        sched.add_event_watch(1, lambda: None)


def test_unfired_watch_changes_nothing():
    plain = _watch_fixture(Scheduler)
    plain.run()
    watched = _watch_fixture(Scheduler)
    watched.add_event_watch(10**9, lambda: 1 / 0)  # never reached
    watched.run()
    assert watched.events_run == plain.events_run
    assert watched.now == plain.now


def test_watch_can_kill_the_next_events_process():
    """The chaos use case: the watch kills a process immediately before
    the armed event dispatches — the victim never runs again."""
    sched = Scheduler()
    steps = []

    def victim():
        while True:
            steps.append(sched.now)
            yield Advance(1.0)

    proc = sched.spawn(victim(), "victim")
    sched.add_event_watch(3, lambda: sched.kill(proc, reason="chaos"))
    sched.run()
    assert proc.state is ProcState.KILLED
    assert len(steps) == 2  # stepped at events 1 and 2, never at 3
