"""Unit tests for the discrete-event kernel."""

import pytest

from repro.des import Advance, Park, Scheduler
from repro.des.mailbox import Mailbox
from repro.des.process import ProcState
from repro.errors import DeadlockError, SimulationError


def test_advance_accumulates_virtual_time():
    sched = Scheduler()
    trace = []

    def prog():
        trace.append(sched.now)
        yield Advance(1.5)
        trace.append(sched.now)
        yield Advance(0.5)
        trace.append(sched.now)
        return "done"

    proc = sched.spawn(prog(), "p")
    sched.run()
    assert trace == [0.0, 1.5, 2.0]
    assert proc.state is ProcState.DONE
    assert proc.result == "done"


def test_zero_advance_is_cooperative_yield():
    sched = Scheduler()
    order = []

    def prog(name):
        for _ in range(3):
            order.append(name)
            yield Advance(0.0)

    sched.spawn(prog("a"), "a")
    sched.spawn(prog("b"), "b")
    sched.run()
    # strict alternation: each zero-advance goes to the back of the queue
    assert order == ["a", "b", "a", "b", "a", "b"]
    assert sched.now == 0.0


def test_park_and_wake_passes_value():
    sched = Scheduler()
    got = []

    def sleeper():
        value = yield Park("test sleep")
        got.append(value)

    proc = sched.spawn(sleeper(), "sleeper")

    def waker():
        yield Advance(2.0)
        sched.wake(proc, "hello")

    sched.spawn(waker(), "waker")
    sched.run()
    assert got == ["hello"]
    assert sched.now == 2.0


def test_deadlock_detection_reports_reasons():
    sched = Scheduler()

    def stuck():
        yield Park("waiting for godot")

    sched.spawn(stuck(), "estragon")
    with pytest.raises(DeadlockError) as exc:
        sched.run()
    assert "estragon" in str(exc.value)
    assert "godot" in str(exc.value)
    assert exc.value.parked == [("estragon", "waiting for godot")]


def test_parked_daemon_is_not_a_deadlock():
    sched = Scheduler()

    def daemon():
        yield Park("idle service")

    def worker():
        yield Advance(1.0)
        return 42

    sched.spawn(daemon(), "svc", daemon=True)
    proc = sched.spawn(worker(), "w")
    sched.run()
    assert proc.result == 42


def test_wake_non_parked_process_is_an_error():
    sched = Scheduler()

    def prog():
        yield Advance(10.0)

    proc = sched.spawn(prog(), "p")

    def bad_waker():
        yield Advance(1.0)
        sched.wake(proc)

    sched.spawn(bad_waker(), "bad")
    with pytest.raises(SimulationError, match="not parked"):
        sched.run()


def test_double_wake_is_an_error():
    sched = Scheduler()

    def sleeper():
        yield Park("z")

    proc = sched.spawn(sleeper(), "s")

    def waker():
        yield Advance(1.0)
        sched.wake(proc)
        sched.wake(proc)

    sched.spawn(waker(), "w")
    with pytest.raises(SimulationError, match="wake"):
        sched.run()


def test_run_until_pauses_and_resumes():
    sched = Scheduler()
    ticks = []

    def ticker():
        for _ in range(5):
            yield Advance(1.0)
            ticks.append(sched.now)

    sched.spawn(ticker(), "t")
    sched.run(until=2.5)
    assert ticks == [1.0, 2.0]
    assert sched.now == 2.5
    sched.run()
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_negative_advance_rejected():
    with pytest.raises(ValueError):
        Advance(-1.0)


def test_kill_stops_process():
    sched = Scheduler()

    def prog():
        while True:
            yield Advance(1.0)

    proc = sched.spawn(prog(), "loop")
    sched.run(until=3.0)
    proc.kill()
    sched.run()
    assert proc.state is ProcState.KILLED


def test_yielding_garbage_raises():
    sched = Scheduler()

    def prog():
        yield "not a syscall"

    sched.spawn(prog(), "bad")
    with pytest.raises(SimulationError, match="yield from"):
        sched.run()


def test_deterministic_event_order_for_ties():
    sched = Scheduler()
    order = []
    for i in range(10):
        sched.schedule(1.0, lambda i=i: order.append(i))
    sched.run()
    assert order == list(range(10))


class TestMailbox:
    def test_put_then_get(self):
        sched = Scheduler()
        box = Mailbox(sched, "m")
        got = []

        def reader():
            proc = sched.procs[0]
            value = yield from box.get(proc)
            got.append(value)

        sched.spawn(reader(), "reader")
        box.put("x")
        sched.run()
        assert got == ["x"]

    def test_get_parks_until_put(self):
        sched = Scheduler()
        box = Mailbox(sched, "m")
        got = []

        def reader():
            proc = sched.procs[0]
            value = yield from box.get(proc)
            got.append((sched.now, value))

        sched.spawn(reader(), "reader")

        def writer():
            yield Advance(3.0)
            box.put("late")

        sched.spawn(writer(), "writer")
        sched.run()
        assert got == [(3.0, "late")]

    def test_fifo_order(self):
        sched = Scheduler()
        box = Mailbox(sched, "m")
        for i in range(5):
            box.put(i)
        got = []

        def reader():
            proc = sched.procs[0]
            for _ in range(5):
                value = yield from box.get(proc)
                got.append(value)

        sched.spawn(reader(), "reader")
        sched.run()
        assert got == [0, 1, 2, 3, 4]

    def test_try_get(self):
        sched = Scheduler()
        box = Mailbox(sched, "m")
        assert box.try_get() is None
        box.put(1)
        assert box.try_get() == 1
        assert len(box) == 0
