"""Unit tests: session API contracts and misuse handling."""

import pytest

from repro.apps.micro import TokenRing
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan


def test_session_is_single_use():
    factory = lambda r: TokenRing(r, laps=2)
    session = ManaSession(2, factory, TESTBOX, ManaConfig.feature_2pc())
    session.run()
    with pytest.raises(RuntimeError, match="once"):
        session.run()


def test_invalid_checkpoint_action_rejected():
    with pytest.raises(ValueError, match="unknown checkpoint action"):
        CheckpointPlan(at=1.0, action="explode")


def test_reexec_images_require_recording_config():
    factory = lambda r: TokenRing(r, laps=2)
    with pytest.raises(ValueError, match="record_replay"):
        ManaSession(2, factory, TESTBOX, ManaConfig.feature_2pc(),
                    reexec_images=[{}, {}])


def test_run_until_reports_partial_state():
    factory = lambda r: TokenRing(r, laps=10, compute_s=1e-3)
    session = ManaSession(2, factory, TESTBOX, ManaConfig.feature_2pc())
    out = session.run(until=1e-3)
    # the run was cut; ranks have no results yet
    assert out.results == [None, None]
    assert session.sched.now == pytest.approx(1e-3)


def test_default_config_is_feature_2pc():
    factory = lambda r: TokenRing(r, laps=2)
    session = ManaSession(2, factory, TESTBOX)
    assert session.cfg.name == "feature/2pc"
    out = session.run()
    assert out.results == [TokenRing.expected(r, 2, 2) for r in range(2)]
