"""Unit tests for repro.util: hashing, serde, rng, tables."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.hashing import hash_ints, hash_rank_tuple, stable_hash
from repro.util.rng import derive_seed, make_rng
from repro.util.serde import dumps, loads, payload_nbytes
from repro.util.tables import AsciiTable, format_ratio, format_series


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(b"abc") == stable_hash(b"abc")

    def test_different_inputs_differ(self):
        assert stable_hash(b"abc") != stable_hash(b"abd")

    def test_bit_width(self):
        for bits in (8, 64, 128, 256):
            assert stable_hash(b"x", bits=bits) < (1 << bits)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            stable_hash(b"x", bits=12)
        with pytest.raises(ValueError):
            stable_hash(b"x", bits=512)

    def test_known_stability(self):
        # pin a value: the GID of world ranks (0,1,2,3) must never change
        # across releases, or checkpoint images would not be portable
        assert hash_rank_tuple((0, 1, 2, 3)) == hash_rank_tuple((0, 1, 2, 3))
        assert hash_rank_tuple((0, 1, 2, 3)) != hash_rank_tuple((0, 1, 3, 2))

    def test_rank_tuple_length_sensitivity(self):
        # (1,) vs (1, 0)-style prefix collisions are prevented by the
        # length prefix in the encoding
        assert hash_rank_tuple((1,)) != hash_rank_tuple((1, 0))
        assert hash_ints([]) != hash_ints([0])


class TestSerde:
    def test_roundtrip_python_objects(self):
        obj = {"a": [1, 2.5, "x"], "b": (None, True)}
        assert loads(dumps(obj)) == obj

    def test_roundtrip_numpy(self):
        arr = np.arange(100, dtype=np.float32).reshape(10, 10)
        out = loads(dumps({"arr": arr}))
        np.testing.assert_array_equal(out["arr"], arr)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            loads(b"NOTANIMAGE" + b"\x00" * 16)

    def test_sentinels_survive_roundtrip_as_singletons(self):
        from repro.simmpi.constants import REQUEST_NULL

        assert loads(dumps(REQUEST_NULL)) is REQUEST_NULL

    @pytest.mark.parametrize(
        "obj,expected",
        [
            (None, 0),
            (b"hello", 5),
            (True, 1),
            (7, 8),
            (3.14, 8),
            (1 + 2j, 16),
            ("abc", 3),
            (np.zeros(10, dtype=np.float64), 80),
        ],
    )
    def test_payload_nbytes(self, obj, expected):
        assert payload_nbytes(obj) == expected

    def test_payload_nbytes_containers(self):
        assert payload_nbytes([1, 2]) == 8 + 16
        assert payload_nbytes({"k": 1.0}) == 8 + 1 + 8

    def test_payload_nbytes_consistent(self):
        obj = {"x": np.arange(7), "y": [1, "two"]}
        assert payload_nbytes(obj) == payload_nbytes(obj)


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(1, "md", 3) == derive_seed(1, "md", 3)

    def test_derive_seed_labels_matter(self):
        assert derive_seed(1, "md", 3) != derive_seed(1, "md", 4)
        assert derive_seed(1, "md") != derive_seed(1, "dft")

    def test_make_rng_streams_independent(self):
        a = make_rng(9, "a").random(4)
        b = make_rng(9, "b").random(4)
        assert not np.allclose(a, b)

    def test_make_rng_reproducible(self):
        np.testing.assert_array_equal(
            make_rng(5, "x", 1).random(8), make_rng(5, "x", 1).random(8)
        )


class TestTables:
    def test_render_aligns_columns(self):
        t = AsciiTable(["a", "bbbb"], title="T")
        t.add_row([1, 2])
        t.add_row(["xxxxx", "y"])
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1  # aligned

    def test_row_width_checked(self):
        t = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_format_ratio(self):
        assert format_ratio(3.0, 2.0) == "1.50x"
        assert format_ratio(1.0, 0.0) == "n/a"

    def test_format_series_with_bars(self):
        text = format_series("s", [1, 2], [1.0, 2.0], bar=True, bar_width=10)
        lines = text.splitlines()
        assert lines[0] == "s:"
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_property_stable_hash_is_pure(data):
    assert stable_hash(data) == stable_hash(data)


@settings(max_examples=30, deadline=None)
@given(
    st.recursive(
        st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8),
                  st.booleans(), st.none()),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=4), children, max_size=4),
        max_leaves=12,
    )
)
def test_property_serde_roundtrip(obj):
    assert loads(dumps(obj)) == obj
