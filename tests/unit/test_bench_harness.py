"""Unit tests for the benchmark harness library."""

import json

import pytest

from repro.bench.harness import (
    BenchScale,
    checkpoint_rounds,
    collective_rate_point,
    current_scale,
    fig2_point,
    save_result,
    table2_cell,
)
from repro.apps.workloads import workload
from repro.hosts import TESTBOX
from repro.mana import ManaConfig


def test_scale_from_environment(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert current_scale() is BenchScale.QUICK
    monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
    assert current_scale() is BenchScale.FULL
    monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
    with pytest.raises(ValueError):
        current_scale()


def test_save_result_writes_text_and_json(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    save_result("demo", "TABLE", {"x": [1, 2]})
    assert (tmp_path / "demo.txt").read_text().strip() == "TABLE"
    assert json.loads((tmp_path / "demo.json").read_text()) == {"x": [1, 2]}
    assert "TABLE" in capsys.readouterr().out


def test_fig2_point_native_vs_mana():
    native = fig2_point(8, TESTBOX, None, steps=3)
    mana = fig2_point(8, TESTBOX, ManaConfig.feature_2pc(), steps=3)
    assert mana.results == native.results
    assert mana.elapsed > native.elapsed


def test_table2_cell_runs_workload():
    out = table2_cell(TESTBOX, None, workload("WOSiH"), nranks=8, iterations=2)
    assert out.total_collective_calls > 0


def test_checkpoint_rounds_verifies_trajectory():
    out = checkpoint_rounds(
        8, TESTBOX, ManaConfig.feature_2pc(), rounds=2, steps=16
    )
    assert len([r for r in out.checkpoints if not r.get("skipped")]) == 2
    assert len(out.restarts) == 2


def test_collective_rate_point_fields():
    point = collective_rate_point(1, TESTBOX, workload("WOSiH"), iterations=2)
    assert point["nranks"] == TESTBOX.ranks_per_node
    assert point["collectives_per_sec_per_process"] > 0


def test_report_collates_all_sections(tmp_path):
    from repro.bench.report import SECTIONS, build_report, write_report

    # a fabricated results dir with two sections present
    (tmp_path / "fig2_gromacs_runtime.txt").write_text("FIG2 TABLE")
    (tmp_path / "table1_vasp_workloads.txt").write_text("TABLE1")
    text = build_report(str(tmp_path))
    assert "FIG2 TABLE" in text and "TABLE1" in text
    assert text.count("missing —") == len(SECTIONS) - 2
    out = write_report(str(tmp_path))
    assert out.endswith("REPORT.md")
