"""Unit tests for the tiered checkpoint store (repro.storage)."""

import pytest

from repro.hosts import TESTBOX, TESTBOX_MN
from repro.storage import (
    TIERS,
    CheckpointStore,
    StoragePolicy,
    policy_by_name,
)
from repro.storage.store import BB_NODE
from repro.util.hashing import stable_hash


def _blob(rank: int, n: int = 64) -> bytes:
    return bytes((rank * 7 + i) % 256 for i in range(n))


def _filled_store(policy, nranks=4, epoch=1, machine=TESTBOX_MN):
    store = CheckpointStore(machine, nranks, policy)
    for r in range(nranks):
        store.put(r, epoch, _blob(r), nbytes=1 << 20,
                  meta={"taken_at": 0.5 + r})
    store.commit_epoch(epoch, now=1.0)
    return store


# ----------------------------------------------------------------------
# policy validation and presets
# ----------------------------------------------------------------------
class TestStoragePolicy:
    def test_presets_by_name(self):
        for name in ("bb_only", "local_only", "partner", "xor4", "ladder"):
            assert policy_by_name(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="bb_only"):
            policy_by_name("raid6")

    def test_needs_at_least_one_tier(self):
        with pytest.raises(ValueError, match="no tier"):
            StoragePolicy(name="none", burst_buffer=False)

    def test_parity_requires_node_local(self):
        with pytest.raises(ValueError, match="node_local"):
            StoragePolicy(name="bad", node_local=False, parity_group=4)

    def test_partner_requires_node_local(self):
        with pytest.raises(ValueError, match="node_local"):
            StoragePolicy(name="bad", node_local=False, partner_replica=True,
                          burst_buffer=False)

    def test_parity_group_of_one_rejected(self):
        with pytest.raises(ValueError, match="parity_group"):
            StoragePolicy(name="bad", node_local=True, parity_group=1)

    def test_keep_epochs_floor(self):
        with pytest.raises(ValueError, match="keep_epochs"):
            StoragePolicy(name="bad", keep_epochs=0)

    def test_redundancy_flag(self):
        assert StoragePolicy.bb_only().redundant
        assert StoragePolicy.partner().redundant
        assert StoragePolicy.xor().redundant
        assert not StoragePolicy.local_only().redundant


# ----------------------------------------------------------------------
# write-path cost model
# ----------------------------------------------------------------------
class TestPlanWrite:
    def test_bb_only_reproduces_legacy_cost(self):
        # the golden-timing contract: pre part exactly 0.0, BB part the
        # historical latency + nbytes * sharers / write_bw
        store = CheckpointStore(TESTBOX, 8, StoragePolicy.bb_only())
        nbytes = 3 << 20
        pre, bb = store.plan_write(0, nbytes)
        assert pre == 0.0
        legacy = (TESTBOX.burst_buffer.latency
                  + nbytes * store.sharers / TESTBOX.burst_buffer.write_bw)
        assert bb == legacy

    def test_local_writes_are_cheaper_than_bb(self):
        nbytes = 8 << 20
        local = CheckpointStore(TESTBOX_MN, 4, StoragePolicy.local_only())
        bb = CheckpointStore(TESTBOX_MN, 4, StoragePolicy.bb_only())
        assert sum(local.plan_write(0, nbytes)) < sum(bb.plan_write(0, nbytes))

    def test_partner_costs_more_than_local(self):
        nbytes = 8 << 20
        local = CheckpointStore(TESTBOX_MN, 4, StoragePolicy.local_only())
        partner = CheckpointStore(TESTBOX_MN, 4, StoragePolicy.partner())
        assert (sum(partner.plan_write(0, nbytes))
                > sum(local.plan_write(0, nbytes)))

    def test_ladder_pays_both_parts(self):
        store = CheckpointStore(TESTBOX_MN, 4, StoragePolicy.ladder())
        pre, bb = store.plan_write(0, 1 << 20)
        assert pre > 0.0 and bb > 0.0


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
class TestPlacement:
    def test_partner_is_next_node_wrapping(self):
        store = CheckpointStore(TESTBOX_MN, 4, StoragePolicy.partner())
        assert store.partner_node(0) == 1
        assert store.partner_node(3) == 0

    def test_parity_node_outside_group(self):
        store = CheckpointStore(TESTBOX_MN, 8, StoragePolicy.xor(4))
        # group 0 = ranks 0..3 on nodes 0..3; parity lands on node 4
        assert store.parity_node(0) == 4
        members = store.group_members(0)
        assert store.parity_node(0) not in [store.node_of(r) for r in members]

    def test_bb_copies_live_off_node(self):
        store = _filled_store(StoragePolicy.bb_only())
        assert store._copies[(1, 0, "bb")].node == BB_NODE


# ----------------------------------------------------------------------
# manifests, commit, GC
# ----------------------------------------------------------------------
class TestManifests:
    def test_epoch_not_durable_until_committed(self):
        store = CheckpointStore(TESTBOX_MN, 2, StoragePolicy.partner())
        store.put(0, 1, _blob(0), nbytes=100)
        store.put(1, 1, _blob(1), nbytes=100)
        assert store.committed_epochs() == []
        assert not store.recover(0, 1).ok
        store.commit_epoch(1, now=2.5)
        assert store.committed_epochs() == [1]
        assert store.manifest(1).sealed_at == 2.5

    def test_manifest_records_real_checksums(self):
        store = _filled_store(StoragePolicy.partner())
        entry = store.manifest(1).entries[2]
        assert entry.checksum == stable_hash(_blob(2))
        assert entry.blob_len == 64
        assert entry.tiers == ("local", "partner")
        assert entry.meta["taken_at"] == 2.5

    def test_discard_drops_everything(self):
        store = CheckpointStore(TESTBOX_MN, 2, StoragePolicy.ladder())
        store.put(0, 1, _blob(0), nbytes=100)
        store.discard_epoch(1)
        assert store.manifest(1) is None
        assert not any(k[0] == 1 for k in store._copies)
        assert store.counters["epochs_discarded"] == 1

    def test_gc_keeps_newest_epochs(self):
        store = CheckpointStore(TESTBOX_MN, 2, StoragePolicy.partner())
        for epoch in (1, 2, 3):
            for r in range(2):
                store.put(r, epoch, _blob(r + epoch), nbytes=100)
            store.commit_epoch(epoch, now=float(epoch))
        # keep_epochs=2: epoch 1 superseded and collected
        assert store.committed_epochs() == [3, 2]
        assert store.manifest(1) is None
        assert store.counters["epochs_gced"] == 1

    def test_gc_never_touches_inflight_epoch(self):
        store = CheckpointStore(TESTBOX_MN, 2, StoragePolicy.partner())
        for epoch in (1, 2):
            for r in range(2):
                store.put(r, epoch, _blob(r), nbytes=100)
            store.commit_epoch(epoch, now=float(epoch))
        store.put(0, 3, _blob(0), nbytes=100)  # in flight, not sealed
        store.commit_epoch(4, now=4.0)
        assert store.manifest(3) is not None
        assert not store.manifest(3).sealed

    def test_torn_manifest_excluded_from_durable_set(self):
        store = CheckpointStore(TESTBOX_MN, 2, StoragePolicy.partner())
        for r in range(2):
            store.put(r, 1, _blob(r), nbytes=100)
        store.commit_epoch(1, now=1.0)
        store.arm_manifest_tear(2)
        for r in range(2):
            store.put(r, 2, _blob(r + 1), nbytes=100)
        store.commit_epoch(2, now=2.0)
        assert store.manifest(2).torn
        assert store.committed_epochs() == [1]
        assert not store.recover(0, 2).ok
        assert store.recover(0, 1).ok


# ----------------------------------------------------------------------
# recovery ladder
# ----------------------------------------------------------------------
class TestRecovery:
    def test_round_trip_bit_identical(self):
        store = _filled_store(StoragePolicy.ladder())
        for r in range(4):
            res = store.recover(r, 1)
            assert res.ok and res.blob == _blob(r)
            assert res.source == "local"
            assert res.read_time > 0.0

    def test_ladder_order_local_partner_bb(self):
        store = _filled_store(StoragePolicy.ladder())
        t_local = store.recover(0, 1).read_time
        store.drop_tier("local", rank=0)
        res = store.recover(0, 1)
        assert res.source == "partner" and res.read_time > t_local
        store.drop_tier("partner", rank=0)
        res = store.recover(0, 1)
        assert res.source == "bb"
        store.drop_tier("bb", rank=0)
        assert not store.recover(0, 1).ok

    def test_failed_attempts_still_charged(self):
        store = _filled_store(StoragePolicy.ladder())
        clean = store.recover(0, 1).read_time
        store.corrupt_copy(0, tier="local")
        res = store.recover(0, 1)
        assert res.ok and res.source == "partner"
        assert ("local", "verify_failed") in res.attempts
        assert res.read_time > clean

    def test_xor_parity_rebuild_is_real_xor(self):
        store = _filled_store(StoragePolicy.xor(4))
        store.drop_tier("local", rank=2)
        res = store.recover(2, 1)
        assert res.ok and res.source == "parity"
        assert res.blob == _blob(2)
        assert store.counters["parity_rebuilds"] == 1

    def test_xor_cannot_rebuild_two_losses(self):
        store = _filled_store(StoragePolicy.xor(4))
        store.drop_tier("local", rank=1)
        store.drop_tier("local", rank=2)
        assert not store.recover(1, 1).ok

    def test_corrupt_survivor_blocks_rebuild(self):
        store = _filled_store(StoragePolicy.xor(4))
        store.drop_tier("local", rank=2)
        assert store.corrupt_copy(3, tier="local")
        res = store.recover(2, 1)
        assert not res.ok
        assert store.counters["verify_failed"] >= 1


# ----------------------------------------------------------------------
# fault surface
# ----------------------------------------------------------------------
class TestFaultSurface:
    def test_drop_tier_scoping(self):
        store = _filled_store(StoragePolicy.ladder())
        assert store.drop_tier("local", rank=1) == 1
        assert not store.has_copy(1, 1, "local")
        assert store.has_copy(1, 0, "local")
        assert store.has_copy(1, 1, "partner")

    def test_drop_unknown_tier_rejected(self):
        store = _filled_store(StoragePolicy.ladder())
        with pytest.raises(ValueError, match="unknown tier"):
            store.drop_tier("tape")

    def test_drop_node_takes_hosted_replicas_but_not_bb(self):
        store = _filled_store(StoragePolicy.ladder())
        # node 1 hosts rank 1's local copy AND rank 0's partner replica
        store.drop_node(1)
        assert not store.has_copy(1, 1, "local")
        assert not store.has_copy(1, 0, "partner")
        assert store.has_copy(1, 1, "bb")
        assert store.has_copy(1, 0, "local")

    def test_corrupt_is_silent_and_real(self):
        store = _filled_store(StoragePolicy.local_only())
        good = bytes(store._copies[(1, 0, "local")].blob)
        assert store.corrupt_copy(0)
        bad = bytes(store._copies[(1, 0, "local")].blob)
        assert bad != good and len(bad) == len(good)
        assert store.counters["copies_corrupted"] == 1
        # detection happens on the read path, not at injection time
        assert store.counters["verify_failed"] == 0
        assert not store.recover(0, 1).ok
        assert store.counters["verify_failed"] == 1

    def test_summary_shape(self):
        store = _filled_store(StoragePolicy.partner())
        s = store.summary()
        assert s["policy"] == "partner"
        assert s["epochs"] == [1]
        assert s["copies_written"] == 8
        assert set(TIERS) >= set(
            t for e in store.manifest(1).entries.values() for t in e.tiers
        )
