"""Unit tests: machine models and burst buffer."""

import pytest

from repro.hosts import (
    CORI_HASWELL,
    CORI_KNL,
    PERLMUTTER,
    TESTBOX,
    BurstBuffer,
    MachineSpec,
    machine_by_name,
)


class TestMachineSpec:
    def test_node_mapping_block_placement(self):
        m = CORI_HASWELL  # 32 ranks/node
        assert m.node_of(0) == 0
        assert m.node_of(31) == 0
        assert m.node_of(32) == 1
        assert m.node_of(2047) == 63

    def test_compute_time_scales_with_flops(self):
        assert CORI_HASWELL.compute_time(11.0e9) == pytest.approx(1.0)
        assert CORI_HASWELL.compute_time(0) == 0.0
        with pytest.raises(ValueError):
            CORI_HASWELL.compute_time(-1)

    def test_knl_task_slower_than_haswell(self):
        flops = 1e9
        assert (CORI_KNL.compute_time(flops)
                > CORI_HASWELL.compute_time(flops) * 2)

    def test_fsgsbase_by_kernel_version(self):
        assert not CORI_HASWELL.fsgsbase_available()   # 4.12
        assert not CORI_KNL.fsgsbase_available()
        assert PERLMUTTER.fsgsbase_available()         # 5.14
        assert TESTBOX.fsgsbase_available()            # 5.15
        weird = MachineSpec(
            name="x", cores_per_node=1, threads_per_core=1, cpu_ghz=1,
            flops_per_task=1e9, sw_overhead_scale=1, ranks_per_node=1,
            linux_kernel="not-a-version",
        )
        assert not weird.fsgsbase_available()

    def test_mana_sw_time_includes_contention(self):
        nominal = 1e-6
        assert CORI_HASWELL.mana_sw_time(nominal) == pytest.approx(
            nominal * CORI_HASWELL.sw_overhead_scale
            * CORI_HASWELL.mana_contention
        )
        # native sw_time has no contention factor
        assert CORI_HASWELL.sw_time(nominal) < CORI_HASWELL.mana_sw_time(nominal)

    def test_lookup_by_name(self):
        assert machine_by_name("knl") is CORI_KNL
        assert machine_by_name("perlmutter") is PERLMUTTER
        with pytest.raises(KeyError, match="known"):
            machine_by_name("summit")


class TestBurstBuffer:
    def test_write_read_times(self):
        bb = BurstBuffer(latency=1e-3, write_bw=1e9, read_bw=2e9)
        assert bb.write_time(1_000_000_000) == pytest.approx(1.001)
        assert bb.read_time(1_000_000_000) == pytest.approx(0.501)
        assert bb.write_time(0) == pytest.approx(1e-3)

    def test_perlmutter_bb_faster_than_cori(self):
        n = 1 << 30
        assert (PERLMUTTER.burst_buffer.write_time(n)
                < CORI_HASWELL.burst_buffer.write_time(n))
