"""Unit tests for the repro-mana CLI."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_workloads_lists_all_table1_cases(capsys):
    rc, out = run_cli(capsys, "workloads")
    assert rc == 0
    for name in ("PdO4", "GaAsBi-64", "CuC_vdw", "Si256_hse", "B.hR105_hse",
                 "PdO2", "CaPOH", "WOSiH", "GaAs-GW0"):
        assert name in out


def test_machines_lists_models(capsys):
    rc, out = run_cli(capsys, "machines")
    assert rc == 0
    assert "haswell" in out and "knl" in out and "testbox" in out
    assert "4.12" in out  # Cori's kernel


def test_configs_lists_presets(capsys):
    rc, out = run_cli(capsys, "configs")
    assert rc == 0
    assert "original" in out and "master" in out and "2pc" in out
    assert "barrier_always" in out and "hybrid" in out


def test_run_ring_native(capsys):
    rc, out = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                      "--steps", "3", "--config", "native")
    assert rc == 0
    assert "elapsed" in out
    assert "pt2pt calls" in out


def test_run_ring_with_checkpoint_restart(capsys):
    rc, out = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                      "--steps", "8", "--config", "2pc",
                      "--checkpoint-at", "0.0003", "--action", "restart")
    assert rc == 0
    assert "checkpoint 0" in out


def test_run_vasp_workload(capsys):
    rc, out = run_cli(capsys, "run", "--app", "vasp", "--ranks", "8",
                      "--iterations", "2", "--workload", "WOSiH",
                      "--config", "master", "--machine", "testbox")
    assert rc == 0
    assert "collectives" in out


def test_run_md_show_results(capsys):
    rc, out = run_cli(capsys, "run", "--app", "md", "--ranks", "8",
                      "--steps", "4", "--config", "native",
                      "--show-results")
    assert rc == 0
    assert "rank 0:" in out


def test_unknown_workload_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--app", "vasp", "--workload", "NotAWorkload"])


def test_halt_and_resume_cli(tmp_path, capsys):
    image = tmp_path / "ring.ckpt"
    rc, out = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                      "--steps", "12", "--config", "2pc",
                      "--halt-at", "0.0004", "--image-out", str(image))
    assert rc == 0
    assert "halted after checkpoint" in out
    assert image.exists()
    rc, out = run_cli(capsys, "resume", "--image", str(image),
                      "--app", "ring", "--ranks", "4", "--steps", "12",
                      "--show-results")
    assert rc == 0
    assert "resumed from" in out
    assert "rank 3:" in out


def test_halt_requires_mana_config(capsys):
    import pytest as _pytest
    with _pytest.raises(SystemExit):
        main(["run", "--app", "ring", "--config", "native",
              "--halt-at", "0.1"])


def test_machines_includes_perlmutter(capsys):
    rc, out = run_cli(capsys, "machines")
    assert "perlmutter" in out
