"""Unit tests for the repro-mana CLI."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_workloads_lists_all_table1_cases(capsys):
    rc, out = run_cli(capsys, "workloads")
    assert rc == 0
    for name in ("PdO4", "GaAsBi-64", "CuC_vdw", "Si256_hse", "B.hR105_hse",
                 "PdO2", "CaPOH", "WOSiH", "GaAs-GW0"):
        assert name in out


def test_machines_lists_models(capsys):
    rc, out = run_cli(capsys, "machines")
    assert rc == 0
    assert "haswell" in out and "knl" in out and "testbox" in out
    assert "4.12" in out  # Cori's kernel


def test_configs_lists_presets(capsys):
    rc, out = run_cli(capsys, "configs")
    assert rc == 0
    assert "original" in out and "master" in out and "2pc" in out
    assert "barrier_always" in out and "hybrid" in out


def test_run_ring_native(capsys):
    rc, out = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                      "--steps", "3", "--config", "native")
    assert rc == 0
    assert "elapsed" in out
    assert "pt2pt calls" in out


def test_run_ring_with_checkpoint_restart(capsys):
    rc, out = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                      "--steps", "8", "--config", "2pc",
                      "--checkpoint-at", "0.0003", "--action", "restart")
    assert rc == 0
    assert "checkpoint 0" in out


def test_run_vasp_workload(capsys):
    rc, out = run_cli(capsys, "run", "--app", "vasp", "--ranks", "8",
                      "--iterations", "2", "--workload", "WOSiH",
                      "--config", "master", "--machine", "testbox")
    assert rc == 0
    assert "collectives" in out


def test_run_md_show_results(capsys):
    rc, out = run_cli(capsys, "run", "--app", "md", "--ranks", "8",
                      "--steps", "4", "--config", "native",
                      "--show-results")
    assert rc == 0
    assert "rank 0:" in out


def test_unknown_workload_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--app", "vasp", "--workload", "NotAWorkload"])


def test_halt_and_resume_cli(tmp_path, capsys):
    image = tmp_path / "ring.ckpt"
    rc, out = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                      "--steps", "12", "--config", "2pc",
                      "--halt-at", "0.0004", "--image-out", str(image))
    assert rc == 0
    assert "halted after checkpoint" in out
    assert image.exists()
    rc, out = run_cli(capsys, "resume", "--image", str(image),
                      "--app", "ring", "--ranks", "4", "--steps", "12",
                      "--show-results")
    assert rc == 0
    assert "resumed from" in out
    assert "rank 3:" in out


def test_halt_requires_mana_config(capsys):
    import pytest as _pytest
    with _pytest.raises(SystemExit):
        main(["run", "--app", "ring", "--config", "native",
              "--halt-at", "0.1"])


def test_machines_includes_perlmutter(capsys):
    rc, out = run_cli(capsys, "machines")
    assert "perlmutter" in out


def test_ir_dump_stats_and_passes(tmp_path, capsys):
    """The offline IR toolchain: halt a recorded run, then lower and
    inspect its image via every ``ir`` action."""
    image = tmp_path / "ring.ckpt"
    rc, out = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                      "--steps", "12", "--config", "2pc",
                      "--halt-at", "0.0004", "--image-out", str(image))
    assert rc == 0

    rc, out = run_cli(capsys, "ir", "dump", "--image", str(image),
                      "--rank", "0", "--limit", "4")
    assert rc == 0
    assert "rank 0" in out
    assert "seq" in out

    rc, out = run_cli(capsys, "ir", "stats", "--image", str(image),
                      "--json")
    assert rc == 0
    assert "drain check:" in out
    assert '"would_be_undrained"' in out

    rc, out = run_cli(capsys, "ir", "run-passes", "--image", str(image))
    assert rc == 0
    assert "ops out" in out


def test_resume_replay_compile_flag(tmp_path, capsys):
    image = tmp_path / "ring.ckpt"
    rc, _ = run_cli(capsys, "run", "--app", "ring", "--ranks", "4",
                    "--steps", "12", "--config", "2pc",
                    "--halt-at", "0.0004", "--image-out", str(image))
    assert rc == 0
    outs = {}
    for mode in ("off", "noop", "opt"):
        rc, out = run_cli(capsys, "resume", "--image", str(image),
                          "--app", "ring", "--ranks", "4", "--steps", "12",
                          "--replay-compile", mode)
        assert rc == 0
        outs[mode] = out
    # the final virtual time line is identical across interpreters
    final = {m: [l for l in o.splitlines() if "finished at" in l]
             for m, o in outs.items()}
    assert final["off"] == final["noop"] == final["opt"]


def test_ir_requires_recorded_image(tmp_path, capsys):
    """An image captured without record_replay has no logs to lower."""
    from repro.apps.micro import TokenRing
    from repro.hosts import TESTBOX
    from repro.mana import ManaConfig, ManaSession
    from repro.mana.session import CheckpointPlan

    cfg = ManaConfig.feature_2pc()  # record_replay stays False
    factory = lambda r: TokenRing(r, laps=6, compute_s=1e-3)
    baseline = ManaSession(4, factory, TESTBOX, cfg).run()
    halted = ManaSession(4, factory, TESTBOX, cfg)
    halted.run(checkpoints=[
        CheckpointPlan(at=baseline.elapsed * 0.5, action="halt")
    ])
    image = tmp_path / "plain.ckpt"
    halted.save_checkpoint(image)
    with pytest.raises(ValueError, match="no replay log"):
        main(["ir", "stats", "--image", str(image)])
