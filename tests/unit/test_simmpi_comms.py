"""Unit tests: groups, communicator creation, context identity."""

import pytest

from repro.errors import MpiError
from repro.simmpi import COMM_NULL, Group, SUM, UNDEFINED
from repro.simmpi.group import IDENT, SIMILAR, UNEQUAL
from repro.simmpi.runner import run_native


class TestGroup:
    def test_basic_queries(self):
        g = Group([4, 2, 7])
        assert g.size == 3
        assert g.rank_of(2) == 1
        assert g.rank_of(99) is UNDEFINED
        assert g.world_rank(2) == 7

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(MpiError):
            Group([1, 1, 2])

    def test_translate_ranks(self):
        world = Group(range(8))
        sub = Group([6, 0, 3])
        assert sub.translate_ranks([0, 1, 2], world) == [6, 0, 3]
        assert world.translate_ranks([5], sub) == [UNDEFINED]

    def test_translate_all_is_section_iiik_basis(self):
        """translate_all_to(world) recovers the world-rank tuple locally."""
        world = Group(range(16))
        sub = Group([3, 14, 9])
        assert sub.translate_all_to(world) == [3, 14, 9]

    def test_set_operations(self):
        a = Group([0, 1, 2, 3])
        b = Group([2, 3, 4])
        assert a.union(b).world_ranks == (0, 1, 2, 3, 4)
        assert a.intersection(b).world_ranks == (2, 3)
        assert a.difference(b).world_ranks == (0, 1)

    def test_incl_excl(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([2, 0]).world_ranks == (30, 10)
        assert g.excl([1, 3]).world_ranks == (10, 30)

    def test_compare(self):
        assert Group([1, 2]).compare(Group([1, 2])) == IDENT
        assert Group([1, 2]).compare(Group([2, 1])) == SIMILAR
        assert Group([1, 2]).compare(Group([1, 3])) == UNEQUAL


class TestCommSplit:
    def test_split_even_odd(self):
        def prog(lib, task):
            w = lib.comm_world
            color = task.world_rank % 2
            sub = yield from lib.comm_split(task, w, color, key=task.world_rank)
            total = yield from lib.allreduce(task, sub, task.world_rank, SUM)
            return sub.size, total

        run = run_native(6, prog)
        for r, (size, total) in enumerate(run.results):
            assert size == 3
            assert total == (0 + 2 + 4 if r % 2 == 0 else 1 + 3 + 5)

    def test_split_key_reorders_ranks(self):
        def prog(lib, task):
            w = lib.comm_world
            # reverse order within the new communicator
            sub = yield from lib.comm_split(task, w, 0, key=-task.world_rank)
            return lib.comm_rank(task, sub)

        run = run_native(4, prog)
        assert run.results == [3, 2, 1, 0]

    def test_split_undefined_returns_comm_null(self):
        def prog(lib, task):
            w = lib.comm_world
            color = UNDEFINED if task.world_rank == 0 else 1
            sub = yield from lib.comm_split(task, w, color)
            if sub is COMM_NULL:
                return "null"
            return lib.comm_size(sub)

        run = run_native(4, prog)
        assert run.results == ["null", 3, 3, 3]

    def test_members_share_one_real_comm_object(self):
        def prog(lib, task):
            sub = yield from lib.comm_split(task, lib.comm_world, 0)
            return sub

        run = run_native(4, prog)
        assert len({id(c) for c in run.results}) == 1

    def test_nested_split(self):
        def prog(lib, task):
            w = lib.comm_world
            half = yield from lib.comm_split(task, w, task.world_rank // 4)
            quarter = yield from lib.comm_split(
                task, half, lib.comm_rank(task, half) // 2
            )
            v = yield from lib.allreduce(task, quarter, task.world_rank, SUM)
            return v

        run = run_native(8, prog)
        assert run.results == [1, 1, 5, 5, 9, 9, 13, 13]


class TestCommDupCreateFree:
    def test_dup_is_distinct_context(self):
        def prog(lib, task):
            w = lib.comm_world
            d = yield from lib.comm_dup(task, w)
            return d.pt2pt_ctx != w.pt2pt_ctx, d.group == w.group

        run = run_native(3, prog)
        assert all(r == (True, True) for r in run.results)

    def test_traffic_on_dup_does_not_match_parent(self):
        def prog(lib, task):
            w = lib.comm_world
            d = yield from lib.comm_dup(task, w)
            if task.world_rank == 0:
                yield from lib.send(task, d, 1, tag=0, payload="on-dup")
                yield from lib.send(task, w, 1, tag=0, payload="on-world")
                return None
            data_w, _ = yield from lib.recv(task, w, 0, 0)
            data_d, _ = yield from lib.recv(task, d, 0, 0)
            return data_w, data_d

        run = run_native(2, prog)
        assert run.results[1] == ("on-world", "on-dup")

    def test_comm_create_subset(self):
        def prog(lib, task):
            w = lib.comm_world
            group = Group([0, 2])
            sub = yield from lib.comm_create(task, w, group)
            if sub is COMM_NULL:
                return None
            return lib.comm_rank(task, sub)

        run = run_native(4, prog)
        assert run.results == [0, None, 1, None]

    def test_comm_create_rejects_non_member_group(self):
        def prog(lib, task):
            w = lib.comm_world
            half = yield from lib.comm_split(task, w, task.world_rank // 2)
            bad = Group([0, 3])  # 3 not in rank 0/1's half
            try:
                yield from lib.comm_create(task, half, bad)
            except MpiError:
                return "raised"
            return "no raise"

        run = run_native(4, prog)
        assert run.results[0] == "raised"

    def test_comm_free_requires_all_members(self):
        def prog(lib, task):
            w = lib.comm_world
            d = yield from lib.comm_dup(task, w)
            if task.world_rank == 0:
                lib.comm_free(task, d)
                after_first = d.freed  # only one member freed -> still alive
                yield from lib.barrier(task, w)
                return after_first
            yield from lib.barrier(task, w)
            lib.comm_free(task, d)
            return d.freed

        run = run_native(2, prog)
        assert run.results[0] is False
        assert run.results[1] is True

    def test_context_ids_differ_across_incarnations(self):
        def prog(lib, task):
            d = yield from lib.comm_dup(task, lib.comm_world)
            return d.pt2pt_ctx

        run1 = run_native(2, prog)
        # a "restarted" library gets different context IDs for the same
        # logical communicator — the fact MANA virtualization must hide
        from repro.des import Scheduler
        from repro.hosts import TESTBOX
        from repro.simmpi import MpiLibrary
        from repro.simnet import Network

        sched = Scheduler()
        lib2 = MpiLibrary(sched, Network(sched, TESTBOX, 2), TESTBOX, incarnation=1)
        assert lib2.comm_world.pt2pt_ctx != run1.lib.comm_world.pt2pt_ctx
