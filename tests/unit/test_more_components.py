"""Unit tests: icoll log, replay log, checkpoint images, deadlock
analyzer pieces, windows, session plumbing, HPCG proxy internals."""

import numpy as np
import pytest

from repro.errors import ManaError, MpiError, RestartError
from repro.hosts import CORI_HASWELL, TESTBOX
from repro.mana.config import ManaConfig
from repro.mana.icoll_log import IcollLog, IcollRecord
from repro.mana.replay import ReplayLog
from repro.simmpi.comm import RealComm
from repro.simmpi.group import Group
from repro.simmpi.window import Window


class TestIcollLog:
    def test_append_returns_index(self):
        log = IcollLog()
        i0 = log.append(IcollRecord(op="ibarrier", comm_vid=1, vid=10))
        i1 = log.append(IcollRecord(op="ibcast", comm_vid=2, vid=11))
        assert (i0, i1) == (0, 1)
        assert len(log) == 2

    def test_drop_comm_prunes_and_reindexes(self):
        log = IcollLog()
        log.append(IcollRecord(op="ibarrier", comm_vid=1, vid=10))
        log.append(IcollRecord(op="ibcast", comm_vid=2, vid=11))
        log.append(IcollRecord(op="ireduce", comm_vid=1, vid=12))
        log.append(IcollRecord(op="iallreduce", comm_vid=2, vid=13))
        dropped = log.drop_comm(1)
        assert dropped == 2
        index = log.reindex()
        assert index == {11: 0, 13: 1}

    def test_snapshot_restore_roundtrip(self):
        log = IcollLog()
        log.append(IcollRecord(op="ibcast", comm_vid=1,
                               payload=np.arange(3), root=0, vid=5))
        log2 = IcollLog()
        log2.restore(log.snapshot())
        assert len(log2) == 1
        rec = log2.records[0]
        assert rec.op == "ibcast" and rec.root == 0 and rec.vid == 5
        np.testing.assert_array_equal(rec.payload, np.arange(3))


class TestReplayLog:
    def test_record_then_replay(self):
        log = ReplayLog()
        log.record("send", None)
        log.record("recv", ("data", None))
        replay = ReplayLog(log.snapshot(), replaying=True)
        assert replay.next("send") is None
        assert replay.next("recv") == ("data", None)
        assert replay.exhausted()

    def test_divergence_detected(self):
        log = ReplayLog()
        log.record("send", None)
        replay = ReplayLog(log.snapshot(), replaying=True)
        with pytest.raises(RestartError, match="divergence"):
            replay.next("recv")

    def test_record_while_replaying_rejected(self):
        replay = ReplayLog([], replaying=True)
        with pytest.raises(ManaError):
            replay.record("send", None)

    def test_recorded_values_are_isolated_from_mutation(self):
        log = ReplayLog()
        buf = [1, 2, 3]
        log.record("recv", buf)
        buf.append(4)  # the application reuses its buffer
        replay = ReplayLog(log.snapshot(), replaying=True)
        assert replay.next("recv") == [1, 2, 3]

    def test_exhaustion_error(self):
        replay = ReplayLog([], replaying=True)
        with pytest.raises(ManaError, match="exhausted"):
            replay.next("send")


class TestWindowUnit:
    def _win(self, p=2, n=4):
        comm = RealComm(100, 101, Group(range(p)))
        return Window(comm, {r: n for r in range(p)})

    def test_put_applies_at_fence(self):
        win = self._win()
        win.open_epoch()
        win.queue_put(1, 0, np.array([9.0, 9.0]))
        assert float(win.buffers[1][0]) == 0.0  # not yet applied
        win.close_epoch()
        assert float(win.buffers[1][0]) == 9.0

    def test_get_sees_epoch_opening_snapshot(self):
        win = self._win()
        win.buffers[0][:] = 5.0
        win.open_epoch()
        win.queue_put(0, 0, np.array([7.0]))
        np.testing.assert_array_equal(win.read(0, 0, 1), [5.0])
        win.close_epoch()

    def test_accumulate_sums(self):
        win = self._win()
        win.open_epoch()
        win.queue_accumulate(0, 1, np.array([2.0]))
        win.queue_accumulate(0, 1, np.array([3.0]))
        win.close_epoch()
        assert float(win.buffers[0][1]) == 5.0

    def test_out_of_range_access_rejected(self):
        win = self._win(n=2)
        win.open_epoch()
        win.queue_put(0, 1, np.array([1.0, 1.0]))
        with pytest.raises(MpiError, match="outside"):
            win.close_epoch()

    def test_ops_outside_epoch_rejected(self):
        win = self._win()
        with pytest.raises(MpiError):
            win.queue_put(0, 0, np.array([1.0]))
        with pytest.raises(MpiError):
            win.read(0, 0, 1)
        with pytest.raises(MpiError):
            win.close_epoch()

    def test_fence_seq_per_rank(self):
        win = self._win()
        assert win.next_fence_seq(0) == 0
        assert win.next_fence_seq(1) == 0
        assert win.next_fence_seq(0) == 1


class TestCheckpointImage:
    def test_image_roundtrips_through_bytes(self):
        from repro.apps.micro import TokenRing
        from repro.mana import ManaSession
        from repro.mana.session import CheckpointPlan

        factory = lambda r: TokenRing(r, laps=4, compute_s=1e-3)
        probe = ManaSession(2, factory, TESTBOX, ManaConfig.feature_2pc()).run()
        session = ManaSession(2, factory, TESTBOX, ManaConfig.feature_2pc())
        session.run(checkpoints=[CheckpointPlan(at=probe.elapsed * 0.5,
                                                action="resume")])
        image = session.rt.ranks[0].last_image
        payload = image.payload()  # decodes the framed blob
        assert payload["rank"] == 0
        assert "counters" in payload and "vcomms" in payload
        assert image.nbytes > len(image.blob)  # modeled overhead included
        assert image.base_bytes == TESTBOX.base_image_bytes

    def test_bb_times_scale_with_size(self):
        from repro.mana.binding import LowerHalfBinding
        from repro.mana.checkpoint import bb_read_time, bb_write_time
        from repro.mana.config import ManaConfig

        class FakeRt:
            binding = LowerHalfBinding(ManaConfig.feature_2pc(), CORI_HASWELL)
            nranks = 64

        class FakeRank:
            rt = FakeRt()

        small = bb_write_time(FakeRank(), 1 << 20)
        big = bb_write_time(FakeRank(), 1 << 30)
        assert big > small * 100
        assert bb_read_time(FakeRank(), 1 << 30) < big  # reads are faster


class TestHpcgProxyUnits:
    def test_spmv_is_symmetric_positive_definite_action(self):
        from repro.apps.hpcg_proxy import HpcgConfig, HpcgProxy

        proxy = HpcgProxy(0, HpcgConfig(nranks=1, sim_n=16), TESTBOX)
        rng = np.random.default_rng(0)
        for _ in range(5):
            v = rng.normal(size=16)
            assert float(v @ proxy._spmv(v)) > 0  # positive definite

    def test_residuals_decrease(self):
        from repro.apps.hpcg_proxy import HpcgConfig, HpcgProxy
        from repro.mana.session import run_app_native

        cfg = HpcgConfig(nranks=4, iterations=8)
        out = run_app_native(4, lambda r: HpcgProxy(r, cfg, TESTBOX), TESTBOX)
        _checksum, residuals = out.results[0]
        assert residuals[-1] < residuals[0]
        # all ranks agree on the global residual history
        assert all(r[1] == residuals for r in out.results)

    def test_checkpoint_restart_preserves_convergence(self):
        from repro.apps.hpcg_proxy import HpcgConfig, HpcgProxy
        from repro.mana import ManaSession
        from repro.mana.session import CheckpointPlan

        cfg = HpcgConfig(nranks=4, iterations=8)
        factory = lambda r: HpcgProxy(r, cfg, TESTBOX)
        mana = ManaConfig.feature_2pc()
        base = ManaSession(4, factory, TESTBOX, mana).run()
        ck = ManaSession(4, factory, TESTBOX, mana).run(
            checkpoints=[CheckpointPlan(at=base.elapsed * 0.5,
                                        action="restart")]
        )
        assert ck.results == base.results


class TestRunOutcome:
    def test_totals_aggregate_rank_stats(self):
        from repro.apps.micro import AllreduceLoop
        from repro.mana.session import run_app_native

        out = run_app_native(4, lambda r: AllreduceLoop(r, iters=3), TESTBOX)
        # 3 allreduces + 1 finalize barrier per rank
        assert out.total_collective_calls == 4 * 4
        assert out.total_pt2pt_calls == 0
        assert out.network_messages > 0
