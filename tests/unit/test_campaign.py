"""Unit tests for the campaign subsystem: specs, store, aggregation,
provenance memoization, and the crash-isolating runner."""

import json

import pytest

from repro.bench.attribution import (
    clear_git_sha_cache,
    git_sha,
    provenance,
    seed_git_sha,
)
from repro.campaign import (
    SPECS,
    CampaignSpec,
    CampaignStore,
    Cell,
    aggregate_records,
    aggregate_store,
    percentile,
    render_summary,
    run_campaign,
    spec_availability_mc,
    spec_smoke,
    summarize,
)
from repro.errors import CampaignError


# ----------------------------------------------------------------------
# specs: expansion, hashing, serialization
# ----------------------------------------------------------------------

def test_grid_expansion_is_deterministic_cross_product():
    spec = CampaignSpec.make(
        name="t", kind="synthetic", base={"work": 1},
        axes={"a": (1, 2), "b": ("x", "y", "z")},
    )
    cells = spec.cells()
    assert len(cells) == 6
    # last axis fastest, base folded into every cell
    assert [c.params_dict for c in cells[:3]] == [
        {"work": 1, "a": 1, "b": "x"},
        {"work": 1, "a": 1, "b": "y"},
        {"work": 1, "a": 1, "b": "z"},
    ]
    assert spec.cells() == cells  # re-expansion identical


def test_identical_config_means_identical_cell_id():
    a = Cell.make("synthetic", {"seed": 3, "work": 10})
    b = Cell.make("synthetic", {"work": 10, "seed": 3})  # order irrelevant
    c = Cell.make("synthetic", {"work": 11, "seed": 3})
    d = Cell.make("other", {"seed": 3, "work": 10})  # kind matters
    assert a.cell_id == b.cell_id
    assert a.cell_id != c.cell_id
    assert a.config_hash != d.config_hash


def test_runner_dedups_identical_cells(tmp_path):
    spec = CampaignSpec.make(
        name="dup", kind="synthetic",
        base={"sleep_s": 0.0, "work": 10},
        axes={"seed": (1, 1, 2)},  # seed 1 twice: one execution
    )
    run = run_campaign(spec, tmp_path / "c", workers=1)
    assert run.total == 2
    assert run.ran == 2


def test_spec_json_round_trip_and_hash():
    for maker in SPECS.values():
        spec = maker()
        doc = json.loads(json.dumps(spec.canonical()))
        back = CampaignSpec.from_json(doc)
        assert back == spec
        assert back.spec_hash == spec.spec_hash
        assert [c.cell_id for c in back.cells()] \
            == [c.cell_id for c in spec.cells()]


def test_availability_spec_meets_mc_floor():
    spec = spec_availability_mc()
    assert len(spec.cells()) >= 200
    assert spec.group_by == ("mtbf_frac", "interval_frac")


# ----------------------------------------------------------------------
# store: manifest, journal, torn lines, dedup
# ----------------------------------------------------------------------

def _record(cell_id, status="ok", value=1.0, **params):
    return {"cell_id": cell_id, "kind": "synthetic",
            "config_hash": cell_id.split("-")[-1], "params": params,
            "status": status, "attempts": 1,
            "result": {"value": value} if status == "ok" else None,
            "error": None if status == "ok" else "boom"}


def test_store_create_refuses_existing(tmp_path):
    spec = spec_smoke(cells=2)
    store = CampaignStore(tmp_path / "c")
    store.create(spec)
    with pytest.raises(CampaignError):
        store.create(spec)


def test_store_spec_mismatch_detected(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.create(spec_smoke(cells=2))
    store.check_spec(spec_smoke(cells=2))  # same grid: fine
    with pytest.raises(CampaignError):
        store.check_spec(spec_smoke(cells=3))


def test_store_rejects_non_terminal_records(tmp_path):
    store = CampaignStore(tmp_path / "c")
    with pytest.raises(CampaignError):
        store.append(_record("synthetic-ab", status="running"))


def test_journal_tolerates_torn_line_and_dedups(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.append(_record("synthetic-aa", value=1.0))
    store.append(_record("synthetic-bb", value=2.0))
    store.append(_record("synthetic-aa", value=3.0))  # re-run: last wins
    store.close()
    # a parent killed mid-append leaves a torn final line
    with open(store.journal_path, "a") as fh:
        fh.write('{"cell_id": "synthetic-cc", "status": "ok", "resu')
    recs = store.records()
    assert set(recs) == {"synthetic-aa", "synthetic-bb"}
    assert recs["synthetic-aa"]["result"]["value"] == 3.0
    assert store.status_counts() == {"ok": 2}


def test_append_seals_torn_tail(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.append(_record("synthetic-aa"))
    store.close()
    # simulate a writer SIGKILL'd mid-append: partial line, no newline
    with open(store.journal_path, "a") as fh:
        fh.write('{"cell_id": "synthetic-bb", "st')
    store.append(_record("synthetic-cc"))
    store.close()
    # the new record must not merge into the torn line
    recs = store.records()
    assert set(recs) == {"synthetic-aa", "synthetic-cc"}
    lines = store.journal_path.read_text().splitlines()
    assert len(lines) == 3


def test_manifest_version_gate(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.create(spec_smoke(cells=2))
    doc = json.loads(store.manifest_path.read_text())
    doc["version"] = 99
    store.manifest_path.write_text(json.dumps(doc))
    with pytest.raises(CampaignError):
        store.load_manifest()


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------

def test_percentile_linear_interpolation():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 0) == 1.0
    assert percentile(vals, 100) == 4.0
    assert percentile(vals, 50) == 2.5
    assert percentile(vals, 25) == 1.75
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile(vals, 101)


def test_summarize_is_order_independent():
    a = summarize([3.0, 1.0, 2.0])
    b = summarize([2.0, 3.0, 1.0])
    assert a == b
    assert a["count"] == 3 and a["mean"] == 2.0
    assert a["min"] == 1.0 and a["max"] == 3.0
    assert summarize([]) is None


def test_aggregate_groups_and_skips_failures():
    records = [
        _record("synthetic-a1", value=1.0, policy="x"),
        _record("synthetic-a2", value=3.0, policy="x"),
        _record("synthetic-b1", value=9.0, policy="y"),
        _record("synthetic-b2", status="crashed", policy="y"),
    ]
    summary = aggregate_records(records, group_by=("policy",),
                                metrics=("value",))
    assert summary["cells_total"] == 4
    assert summary["statuses"] == {"crashed": 1, "ok": 3}
    by_key = {g["key"]["policy"]: g for g in summary["groups"]}
    assert by_key["x"]["metrics"]["value"]["mean"] == 2.0
    # the crashed cell is tallied but contributes no metric values
    assert by_key["y"]["cells"] == 2
    assert by_key["y"]["metrics"]["value"]["count"] == 1
    # aggregation over reversed input is bit-identical
    assert aggregate_records(reversed(records), ("policy",), ("value",)) \
        == summary


def test_aggregate_skips_none_metric_values():
    records = [_record("synthetic-a1", value=None),
               _record("synthetic-a2", value=2.0)]
    summary = aggregate_records(records, (), ("value",))
    assert summary["groups"][0]["metrics"]["value"]["count"] == 1


def test_render_summary_smoke():
    records = [_record("synthetic-a1", value=1.0, policy="x")]
    summary = aggregate_records(records, ("policy",), ("value",))
    text = render_summary(summary, title="t")
    assert "policy" in text and "value mean" in text


# ----------------------------------------------------------------------
# provenance memoization
# ----------------------------------------------------------------------

def test_git_sha_memoized_and_seedable():
    clear_git_sha_cache()
    try:
        seed_git_sha("deadbeef")
        assert git_sha() == "deadbeef"
        prov = provenance()
        assert prov["git_sha"] == "deadbeef"
        assert prov["scale"] in ("quick", "full")
        # None is a legitimate resolved value, not "unresolved"
        seed_git_sha(None)
        assert git_sha() is None
    finally:
        clear_git_sha_cache()


def test_git_sha_asks_git_exactly_once(monkeypatch):
    import repro.bench.attribution as attribution

    calls = []

    def fake_resolve():
        calls.append(1)
        return "cafe"

    monkeypatch.setattr(attribution, "_resolve_git_sha", fake_resolve)
    clear_git_sha_cache()
    try:
        assert git_sha() == "cafe"
        assert git_sha() == "cafe"
        assert provenance()["git_sha"] == "cafe"
        assert len(calls) == 1
    finally:
        clear_git_sha_cache()


# ----------------------------------------------------------------------
# runner: crash isolation, retry, determinism
# ----------------------------------------------------------------------

def test_smoke_campaign_survives_injected_failures(tmp_path):
    spec = spec_smoke(cells=6, sleep_s=0.0)
    run = run_campaign(spec, tmp_path / "c", workers=2)
    # never a campaign-level failure: the raising cell is "failed", the
    # SIGKILL'd worker is "crashed", the flaky cell retries to "ok"
    assert run.counts == {"crashed": 1, "failed": 1, "ok": 7}
    assert run.retries >= 1  # the flaky cell's second attempt
    recs = run.records
    flaky = [r for r in recs.values()
             if r["params"].get("fail_mode") == "flaky"]
    assert flaky[0]["status"] == "ok" and flaky[0]["attempts"] == 2
    crashed = [r for r in recs.values()
               if r["params"].get("fail_mode") == "sigkill"]
    assert crashed[0]["status"] == "crashed"
    assert crashed[0]["attempts"] == spec.max_attempts
    assert "exit code -9" in crashed[0]["error"]
    failed = [r for r in recs.values()
              if r["params"].get("fail_mode") == "raise"]
    assert failed[0]["status"] == "failed"
    assert failed[0]["attempts"] == 1  # deterministic: no retry
    assert "ValueError" in failed[0]["error"]


def test_timeout_kills_hung_cell(tmp_path):
    spec = CampaignSpec.make(
        name="hang", kind="synthetic",
        base={"fail_mode": "hang"}, axes={"seed": (0,)},
        timeout_s=0.5, max_attempts=1,
    )
    run = run_campaign(spec, tmp_path / "c", workers=1)
    assert run.counts == {"timeout": 1}
    rec = next(iter(run.records.values()))
    assert "timeout" in rec["error"]


def test_fresh_run_refuses_populated_directory(tmp_path):
    spec = spec_smoke(cells=2, sleep_s=0.0)
    run_campaign(spec, tmp_path / "c", workers=1)
    with pytest.raises(CampaignError):
        run_campaign(spec, tmp_path / "c", workers=1, on_existing="error")
    with pytest.raises(ValueError):
        run_campaign(spec, tmp_path / "c", on_existing="clobber")


def test_resume_skips_completed_cells(tmp_path):
    spec = spec_smoke(cells=4, sleep_s=0.0)
    first = run_campaign(spec, tmp_path / "c", workers=2)
    again = run_campaign(spec, tmp_path / "c", workers=2,
                         on_existing="resume")
    assert again.ran == 0
    assert again.skipped == first.total
    # resume without the spec rebuilds it from the manifest
    third = run_campaign(None, tmp_path / "c", on_existing="resume")
    assert third.ran == 0 and third.total == first.total


def test_worker_count_does_not_change_results(tmp_path):
    spec = spec_smoke(cells=8, sleep_s=0.0)
    serial = run_campaign(spec, tmp_path / "serial", workers=1)
    wide = run_campaign(spec, tmp_path / "wide", workers=8)
    assert json.dumps(serial.records, sort_keys=True) \
        == json.dumps(wide.records, sort_keys=True)
    # and so the aggregates are bit-identical too
    agg_serial = aggregate_store(CampaignStore(tmp_path / "serial"))
    agg_wide = aggregate_store(CampaignStore(tmp_path / "wide"))
    assert json.dumps(agg_serial, sort_keys=True) \
        == json.dumps(agg_wide, sort_keys=True)
