"""The interposition pipeline: per-stage unit tests, bit-identical
behavior checks against the pre-pipeline wrapper monolith, the trace
spine, and the layering lint.

The "golden" virtual-time constants below were captured from the
monolithic ``wrappers.py`` immediately before the pipeline refactor.
The refactor's contract is bit-identical lowering — same operation
order, same costs, same results — so these are exact ``==`` asserts,
not approximate ones.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.apps.base import MpiProgram
from repro.des.scheduler import Scheduler
from repro.hosts import CORI_HASWELL, TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import CollectiveMode
from repro.mana.fsreg import lower_half_call_cost
from repro.mana.pipeline import (
    CALL_SPECS,
    COLLECTIVE_DESCS,
    ICOLL_DESCS,
    DrainAccounting,
    LowerHalfCosting,
    TwoPhaseGate,
    Virtualization,
)
from repro.mana.runtime import ManaRank, ManaRuntime, RankPhase, ReleaseMode
from repro.mana.session import CheckpointPlan
from repro.mana.requests import VReqKind
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simnet.network import Network, NetworkStats
from repro.simnet.message import Message
from repro.simnet.oob import OobChannel
from repro.util.trace import JsonlSink, RingBufferSink, Tracer

REPO = Path(__file__).resolve().parent.parent.parent

PIPELINE_STAGES = {
    "semantic_lowering", "two_phase_gate", "virtualization",
    "lower_half_costing", "drain_accounting",
}


def make_rank(cfg=None, machine=TESTBOX, nranks=2) -> ManaRank:
    """A real ManaRank wired into a runtime, but with nothing running —
    the stages only need its tables, counters, and config."""
    cfg = cfg if cfg is not None else ManaConfig.feature_2pc()
    sched = Scheduler()
    network = Network(sched, machine, nranks)
    oob = OobChannel(sched)
    rt = ManaRuntime(sched, network, oob, machine, cfg, nranks)
    return rt.ranks[0]


# ----------------------------------------------------------------------
# TwoPhaseGate
# ----------------------------------------------------------------------
class TestTwoPhaseGate:
    def fake(self, cfg, **kw):
        defaults = dict(intent=False, phase=RankPhase.RUNNING,
                        release_mode=None)
        defaults.update(kw)
        return SimpleNamespace(rt=SimpleNamespace(cfg=cfg), **defaults)

    def test_poll_knobs_come_from_config(self):
        cfg = ManaConfig.feature_2pc().but(blocked_poll_budget=4,
                                           idle_poll_limit=7)
        gate = TwoPhaseGate(self.fake(cfg))
        assert gate.blocked_poll_budget == 4
        assert gate.idle_poll_limit == 7

    def test_intent_pending_truth_table(self):
        cfg = ManaConfig.feature_2pc()
        assert not TwoPhaseGate(self.fake(cfg)).intent_pending
        assert TwoPhaseGate(self.fake(cfg, intent=True)).intent_pending
        inside = self.fake(cfg, intent=True, phase=RankPhase.IN_CKPT)
        assert not TwoPhaseGate(inside).intent_pending

    def test_blocked_checkin_policy(self):
        cfg = ManaConfig.feature_2pc().but(blocked_poll_budget=3)
        gate = TwoPhaseGate(self.fake(cfg))  # release_mode None
        # before any release directive: check in immediately
        assert gate.must_checkin_blocked(polls=1)
        released = TwoPhaseGate(self.fake(cfg, release_mode=ReleaseMode.FREE))
        assert not released.must_checkin_blocked(polls=2)
        assert released.must_checkin_blocked(polls=3)

    def test_entry_is_noop_without_intent(self):
        mrank = make_rank()
        gate = TwoPhaseGate(mrank)
        assert list(gate.entry("isend")) == []  # no parks, no advances


# ----------------------------------------------------------------------
# LowerHalfCosting
# ----------------------------------------------------------------------
class TestLowerHalfCosting:
    def test_matches_figure1_formula(self):
        cfg = ManaConfig.master()  # lambda frames on, multi-call helper
        mrank = make_rank(cfg, machine=CORI_HASWELL)
        cost_stage = LowerHalfCosting(mrank)
        ov = cfg.overheads
        got = cost_stage.wrapper_cost(lower_calls=1, lookup_cost=0.5e-6,
                                      vreq_ops=2, pt2pt=True)
        nominal = (ov.ckpt_lock + ov.commit_phase + ov.lambda_frames
                   + ov.vreq_bookkeeping * 2 + ov.counter_update)
        lower = 1 + ov.rank_helper_lh_calls
        want = (CORI_HASWELL.mana_sw_time(nominal)
                + lower_half_call_cost(mrank.rt.binding, lower)
                + 0.5e-6)
        assert got == want

    def test_accumulates_rank_stats(self):
        mrank = make_rank()
        cost_stage = LowerHalfCosting(mrank)
        before = mrank.stats.lower_half_calls
        c = cost_stage.wrapper_cost(lower_calls=3)
        assert mrank.stats.lower_half_calls == before + 3
        assert mrank.stats.overhead_time >= c

    def test_emits_charge_events_when_traced(self):
        mrank = make_rank()
        sink = RingBufferSink()
        mrank.rt.sched.tracer.set_sink(sink)
        LowerHalfCosting(mrank).wrapper_cost()
        (ev,) = sink.by_stage("lower_half_costing")
        assert ev.kind == "charge" and ev.rank == 0


# ----------------------------------------------------------------------
# Virtualization
# ----------------------------------------------------------------------
class TestVirtualization:
    def test_none_comm_is_world(self):
        mrank = make_rank()
        virt = Virtualization(mrank, mrank.vcomms.world_vid)
        vid, real, cost = virt.lookup_comm(None)
        assert vid == mrank.vcomms.world_vid
        assert real is mrank.rt.lib.comm_world
        assert cost >= 0.0

    def test_request_roundtrip(self):
        mrank = make_rank()
        virt = Virtualization(mrank, mrank.vcomms.world_vid)
        entry, _c = virt.create_request(
            VReqKind.IRECV, mrank.vcomms.world_vid,
            real=None, peer=1, tag=5, created_call=0,
        )
        found, _c2 = virt.lookup_request(entry.vid)
        assert found is entry
        virt.retire_request(entry)
        with pytest.raises(Exception):
            virt.lookup_request(entry.vid)

    def test_emits_translation_events_when_traced(self):
        mrank = make_rank()
        sink = RingBufferSink()
        mrank.rt.sched.tracer.set_sink(sink)
        virt = Virtualization(mrank, mrank.vcomms.world_vid)
        virt.lookup_comm(None)
        entry, _ = virt.create_request(
            VReqKind.ISEND, mrank.vcomms.world_vid,
            real=None, peer=1, tag=0, created_call=0,
        )
        virt.retire_request(entry)
        kinds = [e.kind for e in sink.by_stage("virtualization")]
        assert kinds == ["comm_lookup", "vreq_create", "vreq_retire"]


# ----------------------------------------------------------------------
# DrainAccounting
# ----------------------------------------------------------------------
class TestDrainAccounting:
    def test_counts_into_pairwise_counters(self):
        mrank = make_rank()
        acct = DrainAccounting(mrank)
        acct.sent(1, 100)
        acct.sent(1, 50)
        acct.received(1, 60)
        assert mrank.counters.sent[1] == 150
        assert mrank.counters.received[1] == 60

    def test_emits_events_when_traced(self):
        mrank = make_rank()
        sink = RingBufferSink()
        mrank.rt.sched.tracer.set_sink(sink)
        acct = DrainAccounting(mrank)
        acct.sent(1, 10)
        acct.received(1, 10)
        kinds = [e.kind for e in sink.by_stage("drain_accounting")]
        assert kinds == ["sent", "received"]


# ----------------------------------------------------------------------
# the declarative registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_entry_point_has_a_spec(self):
        expected = {
            "isend", "send", "irecv", "recv", "sendrecv", "iprobe", "probe",
            "test", "wait", "waitall", "waitany", "testany", "testall",
            "send_init", "recv_init", "start", "request_free",
            "comm_split", "comm_dup", "comm_create", "comm_free",
            "alloc_mem", "free_mem",
        } | set(COLLECTIVE_DESCS) | set(ICOLL_DESCS)
        assert set(CALL_SPECS) == expected

    def test_icolls_defer_counting(self):
        # non-blocking collectives must raise UnsupportedMpiFeature on
        # the original config *before* counting — the registry rows defer
        for name in ICOLL_DESCS:
            assert CALL_SPECS[name].count is False

    def test_wait_family_owns_its_checkin_policy(self):
        for name in ("wait", "waitall", "waitany", "probe"):
            assert CALL_SPECS[name].checkin is False

    def test_collective_descs_cover_both_paths(self):
        for desc in COLLECTIVE_DESCS.values():
            assert callable(desc.lib) and callable(desc.alt)


# ----------------------------------------------------------------------
# network accounting satellites
# ----------------------------------------------------------------------
class TestNetworkAccounting:
    def test_double_record_is_refused(self):
        stats = NetworkStats()
        msg = Message(src=0, dst=1, context_id=2, tag=0, payload=b"x",
                      nbytes=1)
        stats.record(msg, intranode=True)
        with pytest.raises(Exception, match="recorded twice"):
            stats.record(msg, intranode=True)
        assert stats.pair_messages[(0, 1)] == 1
        assert stats.pair_bytes[(0, 1)] == 1


class PingPong(MpiProgram):
    def main(self, api):
        for i in range(5):
            if api.rank == 0:
                yield from api.send(i, 1, tag=0)
                _p, _s = yield from api.recv(1, 0)
            else:
                _p, _s = yield from api.recv(0, 0)
                yield from api.send(i, 0, tag=0)
        return None


class TestInFlightHighWater:
    def test_peak_recorded_and_drained_at_checkpoint(self):
        session = ManaSession(2, lambda r: PingPong(r), TESTBOX,
                              ManaConfig.feature_2pc())
        out = session.run(checkpoints=[CheckpointPlan(at=5e-6)])
        assert len(out.checkpoints) == 1
        net = session.network
        assert net.in_flight_peak >= 1          # traffic flowed
        assert net.in_flight_count() == 0       # and fully drained
        # per-pair fabric ledger agrees with MANA's drain counters
        rt = session.rt
        app_pair_bytes = sum(
            rt.ranks[0].counters.sent
        ) + sum(rt.ranks[1].counters.sent)
        fabric_app_bytes = sum(
            nb for (s, d), nb in net.stats.pair_bytes.items()
        )
        # fabric also carries collective/drain-internal traffic, so the
        # app-counted bytes can never exceed what crossed the fabric
        assert 0 < app_pair_bytes <= fabric_app_bytes


# ----------------------------------------------------------------------
# bit-identical behavior vs the pre-pipeline monolith (golden values)
# ----------------------------------------------------------------------
class CountedApp(MpiProgram):
    def main(self, api):
        for i in range(5):
            yield from api.compute(1e-4)
            if api.rank == 0:
                yield from api.send(i, 1, tag=0)
            elif api.rank == 1:
                yield from api.recv(0, 0)
            yield from api.allreduce(1)
        return None


class WildcardOrdering(MpiProgram):
    def main(self, api):
        if api.rank != 0:
            for i in range(6):
                yield from api.send((api.rank, i), 0, tag=api.rank)
            return None
        seen = {}
        for _ in range(6 * (api.size - 1)):
            (src, i), _st = yield from api.recv(ANY_SOURCE, ANY_TAG)
            seen[src] = i
        return dict(seen)


class AllocMemUser(MpiProgram):
    def main(self, api):
        mem = yield from api.alloc_mem(4096)
        mem.data[0:5] = b"hello"
        yield from api.barrier()
        yield from api.compute(0.02)
        yield from api.barrier()
        value = bytes(mem.data[0:5])
        yield from api.free_mem(mem)
        return value


class TestBitIdenticalWithMonolith:
    """Exact virtual-time equality with the pre-refactor wrappers."""

    def test_counted_master_haswell(self):
        out = ManaSession(2, lambda r: CountedApp(r), CORI_HASWELL,
                          ManaConfig.master()).run()
        assert out.elapsed == 0.0006443533333333336
        assert out.rank_stats[0].overhead_time == 0.00013290200000000004
        assert out.rank_stats[0].lower_half_calls == 31
        assert out.network_messages == 29

    def test_counted_original_and_pt2pt_modes(self):
        out = ManaSession(2, lambda r: CountedApp(r), TESTBOX,
                          ManaConfig.original()).run()
        assert out.elapsed == 0.0005700613333333336
        cfg = ManaConfig.feature_2pc().but(
            collective_mode=CollectiveMode.PT2PT_ALWAYS
        )
        out2 = ManaSession(2, lambda r: CountedApp(r), TESTBOX, cfg).run()
        assert out2.elapsed == 0.0006075400000000002

    def test_wildcard_with_restart(self):
        base = ManaSession(4, lambda r: WildcardOrdering(r), TESTBOX,
                           ManaConfig.feature_2pc()).run()
        assert base.elapsed == 0.00010287000000000005
        out = ManaSession(4, lambda r: WildcardOrdering(r), TESTBOX,
                          ManaConfig.feature_2pc()).run(
            checkpoints=[CheckpointPlan(at=base.elapsed * 0.5,
                                        action="restart")])
        assert out.elapsed == base.elapsed  # restart hides no time here
        assert out.results[0] == {1: 5, 2: 5, 3: 5}
        assert len(out.restarts) == 1

    def test_allocmem_survives_restart(self):
        out = ManaSession(2, lambda r: AllocMemUser(r), TESTBOX,
                          ManaConfig.feature_2pc()).run(
            checkpoints=[CheckpointPlan(at=0.01, action="restart")])
        assert out.elapsed == 0.02343293533571429
        assert out.results == [b"hello", b"hello"]


# ----------------------------------------------------------------------
# the trace spine, end to end
# ----------------------------------------------------------------------
class TraceApp(MpiProgram):
    def main(self, api):
        for i in range(4):
            yield from api.compute(1e-4)
            if api.rank == 0:
                yield from api.send(i, 1, tag=0)
            elif api.rank == 1:
                _ = yield from api.recv(0, 0)
            yield from api.allreduce(1)
        return api.rank


class TestTraceSpine:
    def test_jsonl_replay_of_checkpointed_run(self):
        buf = io.StringIO()
        out = ManaSession(4, lambda r: TraceApp(r), TESTBOX,
                          ManaConfig.feature_2pc(),
                          trace_sink=JsonlSink(buf)).run(
            checkpoints=[CheckpointPlan(at=2e-4, action="restart")])
        assert len(out.restarts) == 1
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert events, "trace must not be empty"
        stages = {e["stage"] for e in events}
        # every pipeline stage spoke during the checkpointed run
        assert PIPELINE_STAGES <= stages
        # and the layers below did too
        assert {"mpi_library", "network", "scheduler"} <= stages
        ts = [e["t"] for e in events]
        assert all(a <= b for a, b in zip(ts, ts[1:])), \
            "virtual timestamps must be monotone"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # the 2PC gate reported check-ins, and the drain quiesced
        kinds = {(e["stage"], e["kind"]) for e in events}
        assert ("two_phase_gate", "checkin") in kinds
        assert ("drain_accounting", "quiesced") in kinds

    def test_null_sink_is_free_and_ring_buffer_caps(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.emit("network", "inject")  # swallowed
        ring = RingBufferSink(capacity=3)
        tracer.set_sink(ring)
        assert tracer.enabled
        for i in range(5):
            tracer.emit("scheduler", "park", proc=f"p{i}")
        assert ring.emitted == 5
        assert len(ring.events) == 3
        assert ring.events[0].detail["proc"] == "p2"

    def test_tracing_does_not_change_virtual_time(self):
        quiet = ManaSession(2, lambda r: CountedApp(r), TESTBOX,
                            ManaConfig.feature_2pc()).run()
        traced = ManaSession(2, lambda r: CountedApp(r), TESTBOX,
                             ManaConfig.feature_2pc(),
                             trace_sink=RingBufferSink()).run()
        assert traced.elapsed == quiet.elapsed


# ----------------------------------------------------------------------
# tooling
# ----------------------------------------------------------------------
class TestLayeringLint:
    def test_wrapper_facade_is_clean(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_layering.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_lint_catches_a_violation(self, tmp_path):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import check_layering
        finally:
            sys.path.pop(0)
        bad = tmp_path / "wrappers.py"
        bad.write_text(
            "from repro.mana.fsreg import lower_half_call_cost\n"
            "from repro.mana import counters\n"
            "import repro.mana.counters\n"
        )
        found = check_layering.violations(bad)
        assert len(found) == 3

    def test_lint_catches_a_faults_import_in_mechanism_code(self, tmp_path):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import check_layering
        finally:
            sys.path.pop(0)
        bad = tmp_path / "scheduler.py"
        bad.write_text(
            "from repro.faults import FaultInjector\n"
            "import repro.faults.schedule\n"
            "from repro.faults.schedule import FaultSpec\n"
            "from repro.util.rng import make_rng\n"  # fine: not policy
        )
        found = check_layering.policy_violations(bad)
        assert len(found) == 3

    def test_lint_catches_an_upper_layer_import_in_des_core(self, tmp_path):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import check_layering
        finally:
            sys.path.pop(0)
        bad = tmp_path / "scheduler.py"
        bad.write_text(
            "from repro.mana.session import ManaSession\n"
            "import repro.simmpi.library\n"
            "from repro.simnet import Network\n"
            "import heapq\n"  # fine: stdlib
        )
        found = [
            (lineno, desc)
            for lineno, mod, desc in check_layering._imports(bad)
            if any(check_layering._hits(mod, f)
                   for f in check_layering.DES_FORBIDDEN)
        ]
        assert len(found) == 3
