"""Integration: Fortran named constants through the wrappers
(Section III-F), across a restart where their addresses move."""

import pytest

from repro.apps.base import MpiProgram
from repro.errors import ManaError
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.fortran_api import FortranApi
from repro.mana.session import CheckpointPlan
from repro.simmpi.ops import SUM

CFG = ManaConfig.feature_2pc()


class FortranStyleProgram(MpiProgram):
    """A 'Fortran' program: wildcard receives pass MPI_ANY_SOURCE and
    MPI_ANY_TAG as link-time addresses, statuses as MPI_STATUS_IGNORE."""

    def __init__(self, rank, rounds=4):
        super().__init__(rank)
        self.rounds = rounds

    def main(self, api):
        f = FortranApi(api, lambda: api.rt.fortran_linkage
                       if hasattr(api, "rt") else None)
        got = []
        for rnd in range(self.rounds):
            yield from f.mpi_compute(1e-3)
            if f.rank == 0:
                for peer in range(1, f.size):
                    yield from f.mpi_send((rnd, peer), peer, tag=rnd)
                total = yield from f.mpi_allreduce(1, SUM)
            else:
                data, status = yield from f.mpi_recv(
                    f.MPI_ANY_SOURCE, f.MPI_ANY_TAG,
                    status=f.MPI_STATUS_IGNORE,
                )
                assert status is None  # STATUS_IGNORE resolved
                got.append(data)
                total = yield from f.mpi_allreduce(1, SUM)
            assert total == f.size
        return got


def factory(r):
    return FortranStyleProgram(r)


def test_fortran_constants_resolve_through_wrappers():
    session = ManaSession(3, factory, TESTBOX, CFG)
    out = session.run()
    assert out.results[1] == [(rnd, 1) for rnd in range(4)]
    # the resolver actually translated address-style constants
    assert session.rt.ranks[1].fortran.translations > 0


def test_fortran_constants_survive_restart():
    """After a restart the named constants move to new addresses; the
    shim (reading the current linkage, like a common-block reference)
    keeps working and the resolver was rebound."""
    base = ManaSession(3, factory, TESTBOX, CFG).run()
    session = ManaSession(3, factory, TESTBOX, CFG)
    out = session.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="restart")]
    )
    assert out.results == base.results
    assert session.rt.incarnation == 1


def test_cached_addresses_stable_across_reconnect_restart():
    """The constants live in the upper-half stub (the discovery routine
    is linked into MANA, Section III-F), so an address cached before a
    lower-half replacement still resolves afterwards."""

    class AddressCacher(MpiProgram):
        def main(self, api):
            cached = api.rt.fortran_linkage.address_of("MPI_ANY_SOURCE_F")
            if api.rank == 0:
                yield from api.compute(0.02)  # the checkpoint window
                yield from api.send("x", 1, tag=0)
                yield from api.barrier()
                return "sent"
            yield from api.compute(0.02)
            # the restart happened during the compute; the cached
            # upper-half address must still resolve to ANY_SOURCE
            data, _ = yield from api.recv(source=cached, tag=0)
            yield from api.barrier()
            return data

    session = ManaSession(2, lambda r: AddressCacher(r), TESTBOX, CFG)
    out = session.run(
        checkpoints=[CheckpointPlan(at=0.01, action="restart")]
    )
    assert out.results == ["sent", "x"]
    assert session.rt.incarnation == 1


def test_foreign_process_address_is_detected_as_stale():
    """An address minted by a *different* process (a second linkage, as
    a REEXEC-restarted image would contain) is rejected, not misread."""
    from repro.mana.fortran import FortranConstantResolver, FortranLinkage

    other_process = FortranLinkage(0)  # distinct object, distinct addresses

    class ForeignAddress(MpiProgram):
        def main(self, api):
            foreign = other_process.address_of("MPI_ANY_SOURCE_F")
            try:
                yield from api.recv(source=foreign, tag=0)
                return "resolved"
            except ManaError as exc:
                assert "stale" in str(exc)
                return "detected"

    session = ManaSession(1, lambda r: ForeignAddress(r), TESTBOX, CFG)
    out = session.run()
    assert out.results == ["detected"]
