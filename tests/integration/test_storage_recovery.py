"""Degraded-mode recovery through the tiered checkpoint store.

The acceptance bars of the storage subsystem:

* with partner replication, a node loss that destroys a rank's primary
  copies recovers from the replica at the *same* epoch with zero extra
  work lost versus a plain crash with intact storage;
* with redundancy disabled, the same primary-copy damage forces recovery
  back to the previous durable epoch;
* both paths are deterministic — the same seed reproduces bit-identical
  virtual times and traces;
* corruption is never silent: the restart path's reads are all
  checksum-verified, and injected corruption produces a traced
  ``verify_failed`` before any reconstruction or fallback.
"""

import re

import pytest

from repro.apps.micro import TokenRing
from repro.errors import RecoveryError
from repro.faults import FaultInjector, FaultSchedule
from repro.hosts import TESTBOX_MN
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan
from repro.storage import StoragePolicy
from repro.util.trace import RingBufferSink

NRANKS = 4


def _workload():
    factory = lambda r: TokenRing(r, laps=10, compute_s=2e-3)  # noqa: E731
    expected = [TokenRing.expected(r, NRANKS, 10) for r in range(NRANKS)]
    return factory, expected


def _session(factory, policy, sink=None):
    cfg = ManaConfig.fault_tolerant().but(storage=policy)
    return ManaSession(NRANKS, factory, TESTBOX_MN, cfg, trace_sink=sink)


@pytest.fixture(scope="module")
def calibrated():
    """Two-checkpoint plans plus the exact second-commit landmark under
    the partner policy (faulted runs are event-identical up to the
    fault, so the landmark is exact)."""
    factory, expected = _workload()
    ref = ManaSession(
        NRANKS, factory, TESTBOX_MN, ManaConfig.feature_2pc()
    ).run()
    assert ref.results == expected
    plans = [
        CheckpointPlan(at=ref.elapsed * 0.3, action="resume"),
        CheckpointPlan(at=ref.elapsed * 0.6, action="resume"),
    ]
    base = _session(factory, StoragePolicy.partner()).run(
        checkpoints=list(plans)
    )
    assert base.results == expected
    second_commit = base.checkpoints[1]["completed_at"]
    fault_at = second_commit + 0.3 * (base.elapsed - second_commit)
    return factory, expected, plans, fault_at


def _faulted_run(factory, policy, plans, schedule, sink=None):
    sess = _session(factory, policy, sink=sink)
    FaultInjector(sess, schedule).arm()
    return sess.run(checkpoints=list(plans))


# ----------------------------------------------------------------------
# same-epoch recovery from the partner replica
# ----------------------------------------------------------------------
def test_node_loss_with_partner_recovers_same_epoch_zero_extra_loss(calibrated):
    factory, expected, plans, fault_at = calibrated
    victim, partner = 1, StoragePolicy.partner()
    # yardstick: plain crash, storage intact
    intact = _faulted_run(
        factory, partner, plans,
        FaultSchedule(seed=1).kill_rank(victim, fault_at),
    )
    # node loss: the victim's local copies AND the replica it hosts die
    degraded = _faulted_run(
        factory, partner, plans,
        FaultSchedule(seed=1).lose_node(TESTBOX_MN.node_of(victim), fault_at),
    )
    assert intact.results == expected
    assert degraded.results == expected
    ri, rd = intact.recoveries[0], degraded.recoveries[0]
    assert ri["epoch"] == 2 and rd["epoch"] == 2
    assert rd["epoch_fallbacks"] == 0
    # the acceptance bar: zero extra work lost, exactly
    assert rd["work_lost"] == ri["work_lost"]
    # the victim's image came off the partner tier, everyone else local
    assert rd["storage_sources"][victim] == "partner"
    assert all(src == "local" for r, src in rd["storage_sources"].items()
               if r != victim)


def test_redundancy_disabled_falls_back_to_previous_epoch(calibrated):
    factory, expected, plans, _ = calibrated
    # calibrate for local_only (its commits land at different times)
    local = StoragePolicy.local_only()
    base = _session(factory, local).run(checkpoints=list(plans))
    second_commit = base.checkpoints[1]["completed_at"]
    fault_at = second_commit + 0.3 * (base.elapsed - second_commit)
    victim = 1
    out = _faulted_run(
        factory, local, plans,
        FaultSchedule(seed=1)
        .kill_rank(victim, fault_at)
        .lose_tier("local", at=fault_at, rank=victim, epoch=2),
    )
    assert out.results == expected
    rec = out.recoveries[0]
    assert rec["epoch"] == 1
    assert rec["epoch_fallbacks"] == 1
    # falling back an epoch re-loses the work between the two commits
    assert rec["work_lost"] > 0


def test_node_loss_without_redundancy_is_unrecoverable(calibrated):
    factory, _expected, plans, _ = calibrated
    local = StoragePolicy.local_only()
    base = _session(factory, local).run(checkpoints=list(plans))
    second_commit = base.checkpoints[1]["completed_at"]
    fault_at = second_commit + 0.3 * (base.elapsed - second_commit)
    sess = _session(factory, local)
    FaultInjector(
        sess, FaultSchedule(seed=1).lose_node(1, fault_at)
    ).arm()
    # a full node loss destroys every epoch's only copy for that rank
    with pytest.raises(RecoveryError, match="storage tier"):
        sess.run(checkpoints=list(plans))


# ----------------------------------------------------------------------
# determinism: same seed, bit-identical virtual times and traces
# ----------------------------------------------------------------------
def _trace_fingerprint(sink):
    # msg_id and the "#N" labels inside reason strings come from
    # process-global allocators, so their absolute values differ between
    # sessions in one process; everything else must match bit for bit
    def norm(v):
        return re.sub(r"#\d+", "#N", v) if isinstance(v, str) else v

    return [(e.t, e.stage, e.kind, e.rank,
             tuple(sorted((k, norm(v)) for k, v in e.detail.items()
                          if k != "msg_id")))
            for e in sink.events]


@pytest.mark.parametrize("policy_maker,damage", [
    (StoragePolicy.partner, "node_loss"),
    (StoragePolicy.local_only, "tier_lost"),
])
def test_degraded_recovery_is_deterministic(calibrated, policy_maker, damage):
    factory, expected, plans, _ = calibrated
    policy = policy_maker()
    base = _session(factory, policy).run(checkpoints=list(plans))
    second_commit = base.checkpoints[1]["completed_at"]
    fault_at = second_commit + 0.3 * (base.elapsed - second_commit)

    def once():
        schedule = FaultSchedule(seed=1)
        if damage == "node_loss":
            schedule.lose_node(1, fault_at)
        else:
            schedule.kill_rank(1, fault_at)
            schedule.lose_tier("local", at=fault_at, rank=1, epoch=2)
        sink = RingBufferSink(capacity=1 << 17)
        out = _faulted_run(factory, policy, plans, schedule, sink=sink)
        return out, sink

    out1, sink1 = once()
    out2, sink2 = once()
    assert out1.results == out2.results == expected
    assert out1.elapsed == out2.elapsed            # bit-identical
    assert out1.recoveries == out2.recoveries
    assert out1.storage == out2.storage
    assert _trace_fingerprint(sink1) == _trace_fingerprint(sink2)


# ----------------------------------------------------------------------
# corruption is never silent
# ----------------------------------------------------------------------
def test_corruption_is_caught_then_recovered_from_replica():
    factory, expected = _workload()
    policy = StoragePolicy.ladder()
    ref = ManaSession(
        NRANKS, factory, TESTBOX_MN, ManaConfig.feature_2pc()
    ).run()
    plans = [CheckpointPlan(at=ref.elapsed * 0.4, action="resume")]
    base = _session(factory, policy).run(checkpoints=list(plans))
    commit = base.checkpoints[0]["completed_at"]
    fault_at = commit + 0.3 * (base.elapsed - commit)
    victim = 2
    sink = RingBufferSink(capacity=1 << 17)
    out = _faulted_run(
        factory, policy, plans,
        FaultSchedule(seed=1)
        .corrupt_blob(victim, at=fault_at, tier="local", epoch=1)
        .kill_rank(victim, fault_at),
        sink=sink,
    )
    assert out.results == expected
    rec = out.recoveries[0]
    assert rec["epoch"] == 1
    # the bad primary was detected, then the ladder moved on
    assert rec["storage_sources"][victim] == "partner"
    assert out.storage["verify_failed"] == 1
    assert out.storage["copies_corrupted"] == 1
    verify = [e for e in sink.by_stage("storage") if e.kind == "verify_failed"]
    assert len(verify) == 1
    assert verify[0].rank == victim and verify[0].detail["tier"] == "local"
    done = [e for e in sink.events
            if e.stage == "recovery" and e.kind == "recovery_done"]
    # detection strictly precedes the completed recovery in the trace
    assert verify[0].seq < done[0].seq


def test_corrupt_all_replicas_forces_epoch_fallback():
    factory, expected = _workload()
    policy = StoragePolicy.ladder()
    ref = ManaSession(
        NRANKS, factory, TESTBOX_MN, ManaConfig.feature_2pc()
    ).run()
    plans = [
        CheckpointPlan(at=ref.elapsed * 0.3, action="resume"),
        CheckpointPlan(at=ref.elapsed * 0.6, action="resume"),
    ]
    base = _session(factory, policy).run(checkpoints=list(plans))
    second_commit = base.checkpoints[1]["completed_at"]
    fault_at = second_commit + 0.3 * (base.elapsed - second_commit)
    victim = 1
    out = _faulted_run(
        factory, policy, plans,
        FaultSchedule(seed=1)
        .corrupt_blob(victim, at=fault_at, tier="local", epoch=2)
        .corrupt_blob(victim, at=fault_at, tier="partner", epoch=2)
        .corrupt_blob(victim, at=fault_at, tier="bb", epoch=2)
        .kill_rank(victim, fault_at),
    )
    assert out.results == expected
    rec = out.recoveries[0]
    # every epoch-2 copy of the victim was rotten; epoch 1 saved the job
    assert rec["epoch"] == 1
    assert rec["epoch_fallbacks"] == 1
    assert out.storage["verify_failed"] == 3


# ----------------------------------------------------------------------
# torn manifest: the epoch exists but is undiscoverable
# ----------------------------------------------------------------------
def test_torn_manifest_forces_fallback_past_the_epoch():
    factory, expected = _workload()
    policy = StoragePolicy.partner()
    ref = ManaSession(
        NRANKS, factory, TESTBOX_MN, ManaConfig.feature_2pc()
    ).run()
    plans = [
        CheckpointPlan(at=ref.elapsed * 0.3, action="resume"),
        CheckpointPlan(at=ref.elapsed * 0.6, action="resume"),
    ]
    base = _session(factory, policy).run(checkpoints=list(plans))
    second_commit = base.checkpoints[1]["completed_at"]
    fault_at = second_commit + 0.3 * (base.elapsed - second_commit)
    out = _faulted_run(
        factory, policy, plans,
        FaultSchedule(seed=1)
        .tear_manifest(epoch=2)
        .kill_rank(1, fault_at),
    )
    assert out.results == expected
    rec = out.recoveries[0]
    assert rec["epoch"] == 1
    assert out.storage["manifests_torn"] == 1
    assert 2 not in out.storage["epochs"]
