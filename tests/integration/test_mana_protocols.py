"""Integration: the paper's algorithmic contrasts, observed as behaviour.

* Section III-E: barrier-before-Bcast deadlocks; MANA-2.0's modes don't.
* The flawed no-barrier revision (Section III-J) checkpoints a
  half-done Bcast and hangs at restart.
* Section III-B: drain with messages genuinely in flight / in
  unexpected queues / matched by untested Irecvs.
* Section III-C: both restart reconstruction modes on a comm-churn
  workload.
* PT2PT_ALWAYS: a checkpoint landing in the *middle* of a collective.
"""

import pytest

from repro.apps.micro import (
    BcastThenSend,
    CommChurn,
    IcollStream,
    RandomPt2Pt,
    StragglerCollective,
    TokenRing,
)
from repro.errors import DeadlockError
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import CollectiveMode, CommReconstruction, DrainAlgorithm
from repro.mana.session import CheckpointPlan, run_app_native


def run_mana(nranks, factory, cfg, plans=(), until=None):
    session = ManaSession(nranks, factory, machine=TESTBOX, cfg=cfg)
    return session.run(checkpoints=plans, until=until)


class TestSectionIIIEDeadlock:
    factory = staticmethod(lambda r: BcastThenSend(r))

    def test_native_does_not_deadlock(self):
        out = run_app_native(2, self.factory, TESTBOX)
        assert out.results == ["payload", "payload"]

    def test_original_barrier_always_deadlocks(self):
        with pytest.raises(DeadlockError):
            run_mana(2, self.factory, ManaConfig.original())

    def test_master_barrier_always_deadlocks(self):
        with pytest.raises(DeadlockError):
            run_mana(2, self.factory, ManaConfig.master())

    def test_hybrid_runs_clean(self):
        out = run_mana(2, self.factory, ManaConfig.feature_2pc())
        assert out.results == ["payload", "payload"]

    def test_pt2pt_alternative_runs_clean(self):
        cfg = ManaConfig.feature_2pc().but(
            collective_mode=CollectiveMode.PT2PT_ALWAYS
        )
        out = run_mana(2, self.factory, cfg)
        assert out.results == ["payload", "payload"]


class TestFlawedNoBarrier:
    """A checkpoint cut between a Bcast root's early return and a leaf's
    entry is inconsistent; the flawed algorithm takes it anyway."""

    @staticmethod
    def factory(r):
        # rank 1 computes a long time before its Bcast, so a checkpoint
        # in that window finds root finished and leaf not entered
        from repro.apps.base import MpiProgram

        class SlowLeafBcast(MpiProgram):
            def main(self, api):
                if api.rank == 0:
                    value = yield from api.bcast("v", root=0)
                    yield from api.compute(0.2)  # park safely after
                    yield from api.barrier()
                else:
                    yield from api.compute(0.1)  # the checkpoint window
                    value = yield from api.bcast(None, root=0)
                    yield from api.barrier()
                return value

        return SlowLeafBcast(r)

    def test_flawed_restart_deadlocks(self):
        cfg = ManaConfig.feature_2pc().but(
            collective_mode=CollectiveMode.NO_BARRIER_FLAWED
        )
        with pytest.raises(DeadlockError):
            run_mana(2, self.factory, cfg,
                     plans=[CheckpointPlan(at=0.01, action="restart")])

    def test_hybrid_same_cut_is_safe(self):
        out = run_mana(2, self.factory, ManaConfig.feature_2pc(),
                       plans=[CheckpointPlan(at=0.01, action="restart")])
        assert out.results == ["v", "v"]

    def test_hybrid_resume_same_cut_is_safe(self):
        out = run_mana(2, self.factory, ManaConfig.feature_2pc(),
                       plans=[CheckpointPlan(at=0.01, action="resume")])
        assert out.results == ["v", "v"]


class TestDrain:
    @pytest.mark.parametrize("drain", [DrainAlgorithm.ALLTOALL,
                                       DrainAlgorithm.COORDINATOR])
    def test_random_traffic_restart(self, drain):
        nranks = 6
        factory = lambda r: RandomPt2Pt(r, nranks, rounds=10, seed=42)
        cfg = ManaConfig.feature_2pc().but(drain=drain)
        baseline = run_mana(nranks, factory, cfg)
        for frac in (0.2, 0.5, 0.8):
            plans = [CheckpointPlan(at=baseline.elapsed * frac, action="restart")]
            ck = run_mana(nranks, factory, cfg, plans)
            assert ck.results == baseline.results, f"diverged at frac={frac}"

    def test_coordinator_drain_costs_more_oob_messages(self):
        nranks = 6
        factory = lambda r: RandomPt2Pt(r, nranks, rounds=10, seed=7)
        base = ManaConfig.feature_2pc()
        probe = run_mana(nranks, factory, base)
        plan = [CheckpointPlan(at=probe.elapsed * 0.5, action="resume")]
        new = run_mana(nranks, factory,
                       base.but(drain=DrainAlgorithm.ALLTOALL), plan)
        old = run_mana(nranks, factory,
                       base.but(drain=DrainAlgorithm.COORDINATOR), plan)
        assert old.oob_messages > new.oob_messages

    def test_drained_messages_buffered_and_delivered(self):
        """Messages drained at checkpoint must reach their receives
        after restart, in order."""
        from repro.apps.base import MpiProgram

        class LateReceiver(MpiProgram):
            def main(self, api):
                if api.rank == 0:
                    for i in range(5):
                        yield from api.send((i, f"msg{i}"), 1, tag=2)
                    yield from api.barrier()
                    return None
                yield from api.compute(0.05)  # messages pile up unreceived
                got = []
                for _ in range(5):
                    data, _st = yield from api.recv(0, tag=2)
                    got.append(data)
                yield from api.barrier()
                return got

        out = run_mana(2, lambda r: LateReceiver(r), ManaConfig.feature_2pc(),
                       plans=[CheckpointPlan(at=0.01, action="restart")])
        assert out.results[1] == [(i, f"msg{i}") for i in range(5)]


class TestCommReconstruction:
    @pytest.mark.parametrize("mode", [CommReconstruction.ACTIVE_LIST,
                                      CommReconstruction.REPLAY_LOG])
    def test_comm_churn_restart(self, mode):
        factory = lambda r: CommChurn(r, generations=4, compute_s=1e-3)
        cfg = ManaConfig.feature_2pc().but(comm_reconstruction=mode)
        baseline = run_mana(4, factory, cfg)
        plans = [CheckpointPlan(at=baseline.elapsed * 0.6, action="restart")]
        ck = run_mana(4, factory, cfg, plans)
        assert ck.results == baseline.results

    def test_active_list_rebuilds_fewer_comms(self):
        factory = lambda r: CommChurn(r, generations=5, compute_s=1e-3)
        results = {}
        for mode in (CommReconstruction.ACTIVE_LIST, CommReconstruction.REPLAY_LOG):
            cfg = ManaConfig.feature_2pc().but(comm_reconstruction=mode)
            baseline = run_mana(4, factory, cfg)
            plans = [CheckpointPlan(at=baseline.elapsed * 0.8, action="restart")]
            ck = run_mana(4, factory, cfg, plans)
            results[mode] = ck.restarts[0]["per_rank"][0]["comms_rebuilt"]
        assert (results[CommReconstruction.ACTIVE_LIST]
                < results[CommReconstruction.REPLAY_LOG])


class TestPt2ptCollectiveMode:
    def test_checkpoint_lands_mid_collective(self):
        """With PT2PT_ALWAYS a checkpoint can interrupt a collective in
        progress and the collective completes after restart."""
        from repro.apps.base import MpiProgram
        from repro.simmpi.ops import SUM

        class SlowEntryAllreduce(MpiProgram):
            def main(self, api):
                # staggered entry: rank r enters the allreduce at ~r*20ms,
                # so a checkpoint at 30ms lands mid-collective
                yield from api.compute(0.02 * (api.rank + 1))
                v = yield from api.allreduce(api.rank + 1, SUM)
                return v

        cfg = ManaConfig.feature_2pc().but(
            collective_mode=CollectiveMode.PT2PT_ALWAYS
        )
        factory = lambda r: SlowEntryAllreduce(r)
        for action in ("resume", "restart"):
            out = run_mana(4, factory, cfg,
                           plans=[CheckpointPlan(at=0.03, action=action)])
            assert out.results == [10, 10, 10, 10], action

    def test_icoll_and_alt_collectives_coexist(self):
        cfg = ManaConfig.feature_2pc().but(
            collective_mode=CollectiveMode.PT2PT_ALWAYS
        )
        factory = lambda r: IcollStream(r, waves=3, inflight=2, compute_s=1e-3)
        baseline = run_mana(4, factory, cfg)
        plans = [CheckpointPlan(at=baseline.elapsed * 0.5, action="restart")]
        ck = run_mana(4, factory, cfg, plans)
        assert ck.results == [IcollStream.expected(4, 3, 2)] * 4


class TestStraggler:
    def test_checkpoint_waits_for_straggler(self):
        """With BARRIER_ALWAYS, peers sit inside the pre-collective
        barrier while the straggler computes; the checkpoint must wait
        for it (Section III-J)."""
        factory = lambda r: StragglerCollective(r, iters=2, slow_s=0.3)
        cfg = ManaConfig.master()
        out = run_mana(4, factory, cfg,
                       plans=[CheckpointPlan(at=0.01, action="resume")])
        assert out.results == [8, 8, 8, 8]
        rec = out.checkpoints[0]
        # the quiesce could not finish before the straggler's 0.3 s step
        assert rec["quiesce_time"] > 0.2

    def test_hybrid_also_correct_with_straggler(self):
        factory = lambda r: StragglerCollective(r, iters=2, slow_s=0.2)
        out = run_mana(4, factory, ManaConfig.feature_2pc(),
                       plans=[CheckpointPlan(at=0.01, action="restart")])
        assert out.results == [8, 8, 8, 8]


class TestEqualization:
    def test_release_rounds_recorded_when_collectives_open(self):
        """A checkpoint requested while ranks straddle collective
        instances must trigger release rounds (Section III-K)."""
        from repro.apps.base import MpiProgram
        from repro.simmpi.ops import SUM

        class Staggered(MpiProgram):
            def main(self, api):
                total = 0
                for i in range(6):
                    yield from api.compute(0.01 if api.rank else 0.03)
                    total += yield from api.allreduce(1, SUM)
                return total

        factory = lambda r: Staggered(r)
        out = run_mana(4, factory, ManaConfig.feature_2pc(),
                       plans=[CheckpointPlan(at=0.02, action="restart")])
        assert out.results == [24, 24, 24, 24]
