"""Integration: the periodic-checkpoint + failure + recovery flow."""

from repro.apps.micro import TokenRing
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan, resume_from_checkpoint

CFG = ManaConfig.feature_2pc().but(record_replay=True)


def test_recover_from_last_periodic_checkpoint(tmp_path):
    factory = lambda r: TokenRing(r, laps=12, compute_s=2e-3)
    reference = ManaSession(3, factory, TESTBOX, CFG).run()

    victim = ManaSession(3, factory, TESTBOX, CFG)
    victim.run(
        checkpoints=[
            CheckpointPlan(at=reference.elapsed * 0.25, action="resume"),
            CheckpointPlan(at=reference.elapsed * 0.55, action="resume"),
        ],
        until=reference.elapsed * 0.85,  # the failure
    )
    completed = [r for r in victim.coordinator.records if not r.get("skipped")]
    assert len(completed) == 2
    image = tmp_path / "periodic.ckpt"
    victim.save_checkpoint(image)

    recovered = resume_from_checkpoint(image, factory, TESTBOX, CFG).run()
    assert recovered.results == reference.results


def test_failure_before_any_checkpoint_has_no_image(tmp_path):
    import pytest
    from repro.errors import CheckpointError

    factory = lambda r: TokenRing(r, laps=12, compute_s=2e-3)
    reference = ManaSession(3, factory, TESTBOX, CFG).run()
    victim = ManaSession(3, factory, TESTBOX, CFG)
    victim.run(
        checkpoints=[CheckpointPlan(at=reference.elapsed * 0.9,
                                    action="resume")],
        until=reference.elapsed * 0.3,  # failure before the checkpoint
    )
    with pytest.raises(CheckpointError, match="no checkpoint image"):
        victim.save_checkpoint(tmp_path / "none.ckpt")
