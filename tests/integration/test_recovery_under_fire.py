"""Recovery under fire: cascades, suspicion, and graceful job loss.

The phased recovery orchestrator's acceptance tests:

* a second kill landing one scheduler event after the first is merged
  into the same detection/recovery — never processed against stale
  rank objects (the incarnation-dedupe regression);
* a kill landing on the freshly rebuilt incarnation *inside* the
  replay window cascades: the recovery restarts for the union of dead
  ranks and the single episode record says ``attempts == 2``;
* delayed-but-alive heartbeats (``oob_delay``) do not trigger a
  rollback when the suspicion window is armed (``heartbeat_probes=1``),
  while the legacy declare-on-first-silence mode rolls back;
* a crash with nothing durable to roll back to — or a recovery budget
  exhausted by repeated cascades — ends in the typed
  :class:`JobLostError` with a fully-accounted terminal record and a
  drained event queue, never a hang;
* storage damage landing inside the recovery window (tier lost between
  the epoch probe and the rebuild; the recovered epoch's blob
  corrupted) falls back — or job-loses — deterministically: the same
  seed produces bit-identical virtual times.
"""

import pytest

from repro.apps.micro import TokenRing
from repro.errors import JobLostError, RecoveryError
from repro.faults import FaultInjector, FaultSchedule
from repro.hosts import TESTBOX_MN
from repro.mana import ManaConfig, ManaSession
from repro.storage import StoragePolicy


def _ring(nranks: int, laps: int = 10):
    factory = lambda r: TokenRing(r, laps=laps, compute_s=2e-3)  # noqa: E731
    expected = [TokenRing.expected(r, nranks, laps) for r in range(nranks)]
    return factory, expected


def _cfg(**kw):
    return ManaConfig.fault_tolerant().but(
        storage=StoragePolicy.ladder(), **kw
    )


def _calibrate(nranks: int = 4, laps: int = 10, cfg=None):
    """Fault-free reference under periodic checkpoints: returns
    (interval, first_commit_time, elapsed)."""
    factory, expected = _ring(nranks, laps)
    cfg = cfg or _cfg()
    ref = ManaSession(nranks, factory, TESTBOX_MN, cfg).run()
    assert ref.results == expected
    interval = ref.elapsed / 3.0
    base = ManaSession(nranks, factory, TESTBOX_MN, cfg).run(
        checkpoint_interval=interval
    )
    first = next(r["completed_at"] for r in base.checkpoints
                 if not r.get("aborted") and not r.get("skipped"))
    return interval, first, base.elapsed


# ----------------------------------------------------------------------
# cascade merging
# ----------------------------------------------------------------------

def test_two_kills_one_event_apart_merge_into_one_recovery():
    """The stale-notification regression: rank 1 dies one scheduler
    event after rank 0.  Whatever interleaving of detections results,
    recovery must never act on a torn-down incarnation's rank objects —
    the job completes correctly with both ranks accounted dead."""
    nranks = 4
    factory, expected = _ring(nranks)
    interval, first, elapsed = _calibrate(nranks)
    # find the event index just after the first commit: a probe run with
    # a watch ladder maps event index → virtual time (the hot loop only
    # syncs the public counters at watch boundaries, so watches are the
    # one mid-run vantage point with an exact event count)
    count = ManaSession(nranks, factory, TESTBOX_MN, _cfg())
    count.run(checkpoint_interval=interval)
    total = count.sched.events_run
    probe = ManaSession(nranks, factory, TESTBOX_MN, _cfg())
    times = {}
    for n in range(1, total + 1):
        probe.sched.add_event_watch(
            n, lambda n=n: times.__setitem__(n, probe.sched.now)
        )
    probe.run(checkpoint_interval=interval)
    t_kill = first + 0.1 * (elapsed - first)
    event = next(n for n in range(1, total + 1) if times[n] >= t_kill)

    sess = ManaSession(nranks, factory, TESTBOX_MN, _cfg())

    def kill(rank):
        m = sess.rt.ranks[rank]
        for p in (m.proc, m.ckpt_proc, m.hb_proc):
            if p is not None:
                sess.sched.kill(p, reason=f"test: kill {rank}")

    sess.sched.add_event_watch(event, lambda: kill(0))
    sess.sched.add_event_watch(event + 1, lambda: kill(1))
    out = sess.run(checkpoint_interval=interval)
    assert out.results == expected
    dead = sorted({r for rec in out.recoveries for r in rec["dead_ranks"]})
    assert dead == [0, 1]
    for rec in out.recoveries:
        assert rec["recovered_at"] >= rec["detected_at"]
        assert rec["work_lost"] >= 0.0


def test_kill_on_rebuilt_incarnation_cascades_same_episode():
    """A kill landing on the fresh incarnation at the top of the replay
    window merges into the in-progress recovery: one episode record,
    ``attempts == 2``, union of both ranks, correct results."""
    nranks = 4
    factory, expected = _ring(nranks)
    interval, first, elapsed = _calibrate(nranks)
    sess = ManaSession(nranks, factory, TESTBOX_MN, _cfg())
    plan = (FaultSchedule()
            .kill_rank(0, at=first + 0.2 * (elapsed - first))
            .kill_during_recovery(1, phase="replay"))
    FaultInjector(sess, plan).arm()
    out = sess.run(checkpoint_interval=interval)
    assert out.results == expected
    assert len(out.recoveries) == 1
    rec = out.recoveries[0]
    assert rec["attempts"] == 2
    assert rec["dead_ranks"] == [0, 1]
    # both kills are in the fault log: the scheduled one and the
    # recovery-window one (stamped with the phase it hit)
    kinds = sorted(f["kind"] for f in out.faults)
    assert kinds == ["crash_during_recovery", "kill_rank"]
    in_window = next(f for f in out.faults
                     if f["kind"] == "crash_during_recovery")
    assert in_window["phase"] == "replay"
    assert in_window["attempt"] == 1


# ----------------------------------------------------------------------
# heartbeat suspicion window
# ----------------------------------------------------------------------

def _delayed_beats_run(probes: int):
    """Run with every heartbeat delayed by 7 ms for a stretch starting
    after the first commit: a ~8 ms silence gap per rank — past the 5 ms
    timeout (so legacy mode declares death) but inside the suspicion
    window's extra grace period (so the delayed beat clears it)."""
    nranks = 4
    factory, expected = _ring(nranks)
    cfg = _cfg(heartbeat_probes=probes)
    interval, first, elapsed = _calibrate(nranks, cfg=cfg)
    sess = ManaSession(nranks, factory, TESTBOX_MN, cfg)
    state = {"armed": False, "budget": 40}

    def delay_beats(dst, item):
        if not state["armed"] or state["budget"] <= 0:
            return None
        if not (isinstance(item, tuple) and item
                and item[0] == "heartbeat"):
            return None
        state["budget"] -= 1
        return ("delay", 7e-3)

    sess.oob.set_fault_filter(delay_beats)
    sess.sched.schedule_at(first + 0.1 * (elapsed - first),
                           lambda: state.__setitem__("armed", True))
    out = sess.run(checkpoint_interval=interval)
    assert out.results == expected
    return out


def test_delayed_heartbeats_with_suspicion_window_no_rollback():
    """Delayed-but-alive is not dead: with ``heartbeat_probes=1`` the
    coordinator suspects, probes, and clears — zero detections, zero
    recoveries, untouched results."""
    out = _delayed_beats_run(probes=1)
    assert out.detections == []
    assert out.recoveries == []


def test_delayed_heartbeats_legacy_mode_declares_dead():
    """The companion: ``heartbeat_probes=0`` (declare on first silence)
    turns the same delayed beats into a false detection and a rollback —
    the job still completes correctly, but pays a recovery."""
    out = _delayed_beats_run(probes=0)
    assert len(out.detections) >= 1
    assert len(out.recoveries) >= 1


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------

def test_crash_before_first_commit_is_typed_job_loss():
    nranks = 4
    factory, expected = _ring(nranks)
    sess = ManaSession(nranks, factory, TESTBOX_MN, _cfg())
    FaultInjector(sess, FaultSchedule().kill_rank(0, at=2e-3)).arm()
    with pytest.raises(JobLostError) as ei:
        sess.run()
    rec = ei.value.record
    assert rec["job_lost"] is True
    assert rec["reason"] == "no_recoverable_epoch"
    assert rec["dead_ranks"] == [0]
    assert rec["work_lost"] == rec["lost_at"] > 0.0
    assert rec["durable_epochs"] == []
    # the DES wound down clean: queue drained, nothing runnable left
    assert not sess.sched._queue and not sess.sched._fifo
    # JobLostError subclasses RecoveryError: existing callers still catch
    assert isinstance(ei.value, RecoveryError)
    # the terminal record is also the last recovery record
    assert sess.rt.recovery_records[-1] is rec


def test_max_incarnations_exhaustion_is_typed_job_loss():
    """Every rebuilt incarnation is killed at the top of its replay
    window; after ``max_incarnations`` attempts the orchestrator gives
    up gracefully instead of looping forever."""
    nranks = 4
    factory, expected = _ring(nranks)
    cfg = _cfg(max_incarnations=2, recovery_backoff=1e-4)
    interval, first, elapsed = _calibrate(nranks, cfg=cfg)
    sess = ManaSession(nranks, factory, TESTBOX_MN, cfg)
    plan = (FaultSchedule()
            .kill_rank(0, at=first + 0.2 * (elapsed - first))
            .kill_during_recovery(0, phase="replay", count=10))
    FaultInjector(sess, plan).arm()
    with pytest.raises(JobLostError) as ei:
        sess.run(checkpoint_interval=interval)
    rec = ei.value.record
    assert rec["reason"] == "max_incarnations"
    assert rec["attempts"] == 2
    assert rec["durable_epochs"]  # there WAS something to roll back to
    assert not sess.sched._queue and not sess.sched._fifo


# ----------------------------------------------------------------------
# storage damage inside the recovery window
# ----------------------------------------------------------------------

def _run_tier_lost_in_window(nranks=4):
    """Kill a rank; drop the attempt-1 storage source during teardown
    (after the epoch probe read it, before the rebuilt job is stable);
    force a cascade so attempt 2 must re-select without that tier."""
    factory, expected = _ring(nranks)
    cfg = _cfg(recovery_backoff=1e-4)
    interval, first, elapsed = _calibrate(nranks, cfg=cfg)
    sess = ManaSession(nranks, factory, TESTBOX_MN, cfg)
    dropped = []

    def drop_tier_in_window(phase, ctx):
        if phase == "teardown" and ctx["attempt"] == 1:
            dropped.append(sess.rt.store.drop_tier("local"))

    sess.recovery_phase_hooks.append(drop_tier_in_window)
    plan = (FaultSchedule()
            .kill_rank(0, at=first + 0.2 * (elapsed - first))
            .kill_during_recovery(1, phase="replay", count=1))
    FaultInjector(sess, plan).arm()
    out = sess.run(checkpoint_interval=interval)
    assert out.results == expected
    assert dropped and dropped[0] > 0
    rec = out.recoveries[-1]
    assert rec["attempts"] == 2
    # attempt 2 re-selected with the local tier gone: every source used
    # is a surviving rung of the ladder
    assert all(src != "local" for src in rec["storage_sources"].values())
    return out.elapsed, out.recoveries


def test_tier_lost_between_probe_and_rebuild_falls_back():
    _run_tier_lost_in_window()


def test_tier_lost_in_window_is_deterministic():
    a = _run_tier_lost_in_window()
    b = _run_tier_lost_in_window()
    assert a == b  # same seed ⇒ bit-identical virtual times and records


def _run_blob_corrupt_on_recovery(nranks=4):
    """Corrupt the victim's newest copy right as recovery starts
    selecting an epoch: the read-path checksum rejects it and the
    ladder's surviving replicas (or an older epoch) carry the restart."""
    factory, expected = _ring(nranks)
    cfg = _cfg()
    interval, first, elapsed = _calibrate(nranks, cfg=cfg)
    sess = ManaSession(nranks, factory, TESTBOX_MN, cfg)
    corrupted = []

    def corrupt_at_select(phase, ctx):
        if phase == "select_epoch" and ctx["attempt"] == 1:
            corrupted.append(sess.rt.store.corrupt_copy(0))

    sess.recovery_phase_hooks.append(corrupt_at_select)
    plan = FaultSchedule().kill_rank(0, at=first + 0.2 * (elapsed - first))
    FaultInjector(sess, plan).arm()
    out = sess.run(checkpoint_interval=interval)
    assert out.results == expected
    assert corrupted == [True]
    rec = out.recoveries[-1]
    # rank 0's image came from somewhere that verified — and the storage
    # layer counted the rejected read
    assert sess.rt.store.counters.get("verify_failed", 0) >= 1
    return out.elapsed, out.recoveries, rec["storage_sources"]


def test_blob_corrupt_on_recovered_epoch_falls_back():
    _run_blob_corrupt_on_recovery()


def test_blob_corrupt_on_recovery_is_deterministic():
    assert _run_blob_corrupt_on_recovery() == _run_blob_corrupt_on_recovery()
