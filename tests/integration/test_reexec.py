"""Integration: REEXEC — full restart from an on-disk image in a fresh
simulator 'process' via deterministic re-execution."""

import pytest

from repro.apps.micro import (
    AllreduceLoop,
    CommChurn,
    IcollStream,
    RandomPt2Pt,
    TokenRing,
)
from repro.errors import RestartError
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import CollectiveMode, CommReconstruction
from repro.mana.session import (
    HALTED,
    CheckpointPlan,
    resume_from_checkpoint,
)

CFG = ManaConfig.feature_2pc().but(record_replay=True)


def halt_and_resume(tmp_path, nranks, factory, frac, cfg=CFG):
    """Run, halt at frac of the runtime, save, resume in a new session."""
    baseline = ManaSession(nranks, factory, TESTBOX, cfg).run()
    halted = ManaSession(nranks, factory, TESTBOX, cfg)
    out = halted.run(
        checkpoints=[CheckpointPlan(at=baseline.elapsed * frac, action="halt")]
    )
    assert out.results == [HALTED] * nranks
    path = tmp_path / "ckpt.img"
    nbytes = halted.save_checkpoint(path)
    assert nbytes > 0
    resumed = resume_from_checkpoint(path, factory, TESTBOX, cfg).run()
    return baseline, resumed


class TestReexec:
    def test_token_ring(self, tmp_path):
        factory = lambda r: TokenRing(r, laps=8, compute_s=1e-3)
        base, resumed = halt_and_resume(tmp_path, 4, factory, 0.5)
        assert resumed.results == base.results

    def test_allreduce_loop(self, tmp_path):
        factory = lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3)
        base, resumed = halt_and_resume(tmp_path, 4, factory, 0.45)
        assert resumed.results == [AllreduceLoop.expected(4, 8)] * 4

    @pytest.mark.parametrize("frac", [0.15, 0.5, 0.8])
    def test_random_pt2pt_various_cuts(self, tmp_path, frac):
        factory = lambda r: RandomPt2Pt(r, 5, rounds=8, seed=3,
                                        compute_s=1e-4)
        base, resumed = halt_and_resume(tmp_path, 5, factory, frac)
        assert resumed.results == base.results

    def test_icoll_stream_replays(self, tmp_path):
        factory = lambda r: IcollStream(r, waves=5, inflight=3, compute_s=1e-3)
        base, resumed = halt_and_resume(tmp_path, 4, factory, 0.5)
        assert resumed.results == [IcollStream.expected(4, 5, 3)] * 4

    @pytest.mark.parametrize(
        "mode", [CommReconstruction.ACTIVE_LIST, CommReconstruction.REPLAY_LOG]
    )
    def test_comm_churn(self, tmp_path, mode):
        factory = lambda r: CommChurn(r, generations=4, compute_s=1e-3)
        cfg = CFG.but(comm_reconstruction=mode)
        base, resumed = halt_and_resume(tmp_path, 4, factory, 0.6, cfg)
        assert resumed.results == base.results

    def test_second_checkpoint_after_resume(self, tmp_path):
        """The resumed session keeps recording; it can checkpoint again."""
        factory = lambda r: TokenRing(r, laps=10, compute_s=1e-3)
        baseline = ManaSession(4, factory, TESTBOX, CFG).run()
        halted = ManaSession(4, factory, TESTBOX, CFG)
        halted.run(checkpoints=[
            CheckpointPlan(at=baseline.elapsed * 0.3, action="halt")
        ])
        path = tmp_path / "c1.img"
        halted.save_checkpoint(path)
        resumed_session = resume_from_checkpoint(path, factory, TESTBOX, CFG)
        out = resumed_session.run(
            checkpoints=[CheckpointPlan(at=baseline.elapsed * 0.4,
                                        action="restart")]
        )
        assert out.results == baseline.results

    def test_pt2pt_always_mode_rejected(self):
        cfg = CFG.but(collective_mode=CollectiveMode.PT2PT_ALWAYS)
        factory = lambda r: TokenRing(r, laps=2)
        with pytest.raises(RestartError, match="PT2PT_ALWAYS"):
            ManaSession(2, factory, TESTBOX, cfg).run()

    def test_resume_requires_replay_log(self, tmp_path):
        """An image from a non-recording run cannot be REEXEC-resumed."""
        plain = ManaConfig.feature_2pc()
        factory = lambda r: TokenRing(r, laps=6, compute_s=1e-3)
        baseline = ManaSession(4, factory, TESTBOX, plain).run()
        halted = ManaSession(4, factory, TESTBOX, plain)
        halted.run(checkpoints=[
            CheckpointPlan(at=baseline.elapsed * 0.5, action="halt")
        ])
        path = tmp_path / "plain.img"
        halted.save_checkpoint(path)
        with pytest.raises(ValueError, match="replay log"):
            resume_from_checkpoint(path, factory, TESTBOX, plain)

    def test_machine_mismatch_warns_and_resumes(self, tmp_path):
        """Cross-machine restore is supported: the portable upper half
        rebinds against the target machine (with a MigrationWarning)."""
        from repro.errors import MigrationWarning
        from repro.hosts import CORI_HASWELL

        factory = lambda r: TokenRing(r, laps=6, compute_s=1e-3)
        baseline = ManaSession(4, factory, TESTBOX, CFG).run()
        halted = ManaSession(4, factory, TESTBOX, CFG)
        halted.run(checkpoints=[
            CheckpointPlan(at=baseline.elapsed * 0.5, action="halt")
        ])
        path = tmp_path / "t.img"
        halted.save_checkpoint(path)
        with pytest.warns(MigrationWarning, match="testbox"):
            migrated = resume_from_checkpoint(path, factory, CORI_HASWELL, CFG)
        assert migrated.run().results == baseline.results
