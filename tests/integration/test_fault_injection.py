"""End-to-end fault injection and automatic recovery.

The acceptance scenarios of the fault subsystem:

* a rank is killed mid-run *after* a committed checkpoint and the job
  completes with correct results via automatic rollback-restart;
* a burst-buffer write fails mid-2PC and the coordinator aborts the
  epoch cleanly — no wedge, no partial image counted as durable;
* a 2PC COMMIT directive is dropped on the coordinator channel and the
  bounded retransmit timer re-sends it.

The named scenarios in :mod:`repro.faults.scenarios` are the single
source of truth for how each is staged (the CLI and the fault benchmark
run the same code); the tests here assert on their verdicts plus the
structural facts each scenario reports.
"""

import pytest

from repro.apps.micro import TokenRing
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.faults.scenarios import run_scenario, scenario_names
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan


# ----------------------------------------------------------------------
# spec hygiene
# ----------------------------------------------------------------------

def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="explode")
    with pytest.raises(ValueError):
        FaultSpec(kind="kill_rank", rank=0)        # no 'at'
    with pytest.raises(ValueError):
        FaultSpec(kind="oob_delay", match="intent")  # no positive delay
    with pytest.raises(ValueError):
        FaultSpec(kind="bb_write_fail", rank=0, frac=1.0)  # frac in [0,1)
    with pytest.raises(ValueError):
        FaultSpec(kind="net_drop", count=0)


def test_injector_arms_only_once():
    sess = ManaSession(
        2, lambda r: TokenRing(r, laps=2), TESTBOX,
        ManaConfig.fault_tolerant(),
    )
    inj = FaultInjector(sess, FaultSchedule().kill_rank(0, at=1.0))
    inj.arm()
    with pytest.raises(RuntimeError):
        inj.arm()


# ----------------------------------------------------------------------
# the acceptance scenarios (seed-swept)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 5])
def test_kill_after_checkpoint_recovers_automatically(seed):
    s = run_scenario("kill-after-ckpt", seed=seed, nranks=4)
    assert s["ok"], s
    assert s["results_correct"]
    assert s["recovery_count"] == 1
    assert s["killed_at"] > 0
    assert s["detection_latency"] > 0
    assert s["work_lost"] > 0
    # recovery costs time, it never invents speedup
    assert s["elapsed"] > s["ref_elapsed"]


@pytest.mark.parametrize("seed", [0, 1, 5])
def test_bb_write_failure_aborts_cleanly(seed):
    s = run_scenario("bb-write-abort", seed=seed, nranks=4)
    assert s["ok"], s
    assert s["results_correct"]          # the job was never wedged
    assert s["aborted_epochs"] == [2]
    assert s["committed_epochs"] == [1]
    assert s["durable_epochs"] == [1]    # the partial image is not durable


@pytest.mark.parametrize("seed", [0, 1, 5])
def test_dropped_commit_is_retransmitted(seed):
    s = run_scenario("drop-commit", seed=seed, nranks=4)
    assert s["ok"], s
    assert s["dropped"] == 1
    assert s["retry_rounds"] >= 1
    assert s["committed_epochs"] == [1]


@pytest.mark.parametrize("seed", [2, 9])
def test_random_chaos_survives(seed):
    s = run_scenario("random-chaos", seed=seed, nranks=4)
    assert s["ok"], s
    assert s["checkpoints_committed"] >= 1


def test_every_scenario_passes_default_seed():
    for name in scenario_names():
        s = run_scenario(name, seed=0, nranks=4)
        assert s["ok"], (name, s)


# ----------------------------------------------------------------------
# direct structural checks that the scenarios don't cover
# ----------------------------------------------------------------------

def _run(nranks, cfg, schedule=None, **run_kwargs):
    factory = lambda r: TokenRing(r, laps=8, compute_s=2e-3)  # noqa: E731
    expected = [TokenRing.expected(r, nranks, 8) for r in range(nranks)]
    sess = ManaSession(nranks, factory, TESTBOX, cfg)
    if schedule is not None:
        FaultInjector(sess, schedule).arm()
    out = sess.run(**run_kwargs)
    return sess, out, expected


def test_fault_free_fault_tolerant_run_matches_feature_2pc():
    """Heartbeats and retry timers must not perturb virtual time."""
    _, base, expected = _run(4, ManaConfig.feature_2pc())
    _, ft, _ = _run(4, ManaConfig.fault_tolerant())
    assert ft.results == expected
    assert ft.elapsed == base.elapsed


def test_delayed_oob_directive_is_survived():
    """A slow coordinator channel stalls the cycle but corrupts nothing."""
    _, base, expected = _run(4, ManaConfig.fault_tolerant())
    plans = [CheckpointPlan(at=base.elapsed * 0.4, action="resume")]
    sched = FaultSchedule().delay_oob("intent", delay=2e-3, count=2)
    sess, out, _ = _run(
        4, ManaConfig.fault_tolerant(), sched, checkpoints=plans
    )
    assert out.results == expected
    assert len(out.faults) == 2
    committed = [
        r for r in out.checkpoints
        if not r.get("aborted") and not r.get("skipped")
    ]
    assert len(committed) == 1


def test_abort_then_next_epoch_commits():
    """After a bb-write abort the *next* cycle succeeds and supersedes."""
    _, base, expected = _run(4, ManaConfig.fault_tolerant())
    plans = [
        CheckpointPlan(at=base.elapsed * 0.3, action="resume"),
        CheckpointPlan(at=base.elapsed * 0.6, action="resume"),
    ]
    sched = FaultSchedule().fail_bb_write(rank=1, epoch=1, frac=0.4)
    sess, out, _ = _run(
        4, ManaConfig.fault_tolerant(), sched, checkpoints=plans
    )
    assert out.results == expected
    aborted = [r for r in out.checkpoints if r.get("aborted")]
    committed = [
        r for r in out.checkpoints
        if not r.get("aborted") and not r.get("skipped")
    ]
    assert [r["epoch"] for r in aborted] == [1]
    assert [r["epoch"] for r in committed] == [2]
    assert all(m.durable_image.epoch == 2 for m in sess.rt.ranks)


def test_recovery_accounting_is_coherent():
    """work_lost = detection time - durable epoch's taken_at, in order."""
    _, base, expected = _run(4, ManaConfig.fault_tolerant())
    plans = [CheckpointPlan(at=base.elapsed * 0.3, action="resume")]
    calib, with_ckpt, _ = _run(
        4, ManaConfig.fault_tolerant(), checkpoints=list(plans)
    )
    committed_at = with_ckpt.checkpoints[0]["completed_at"]
    kill_at = committed_at + (with_ckpt.elapsed - committed_at) * 0.4
    sess, out, _ = _run(
        4, ManaConfig.fault_tolerant(),
        FaultSchedule().kill_rank(2, at=kill_at),
        checkpoints=list(plans),
    )
    assert out.results == expected
    (fault,) = [f for f in out.faults if f["kind"] == "kill_rank"]
    (detection,) = out.detections
    (recovery,) = out.recoveries
    assert fault["rank"] == 2 and "main" in fault["killed"]
    assert detection["detected_at"] > fault["at"]
    assert recovery["dead_ranks"] == [2]
    assert recovery["work_lost"] > 0
    assert recovery["recovered_at"] >= detection["detected_at"]
    assert recovery["incarnation"] == 1
