"""Integration: one-sided communication — native support, MANA refusal."""

import numpy as np
import pytest

from repro.apps.base import MpiProgram
from repro.apps.dft_proxy import DftConfig, DftProxy
from repro.apps.workloads import workload
from repro.errors import MpiError, UnsupportedMpiFeature
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import run_app_native


class RmaRing(MpiProgram):
    """Each rank puts into its right neighbor's window; fence epochs."""

    def main(self, api):
        p, me = api.size, api.rank
        win = yield from api.win_create(8)
        yield from api.win_fence(win)                       # open epoch
        yield from api.win_put(win, (me + 1) % p, 0, np.full(4, float(me)))
        # gets during the epoch see the pre-epoch (zero) contents
        before = yield from api.win_get(win, me, 0, 4)
        yield from api.win_fence(win)                       # close: apply
        yield from api.win_fence(win)                       # open again
        after = yield from api.win_get(win, me, 0, 4)
        yield from api.win_fence(win)
        yield from api.win_free(win)
        return float(before[0]), float(after[0])


class RmaAccumulate(MpiProgram):
    def main(self, api):
        win = yield from api.win_create(4)
        yield from api.win_fence(win)
        yield from api.win_accumulate(win, 0, 0, np.ones(4))
        yield from api.win_fence(win)
        yield from api.win_fence(win)
        value = yield from api.win_get(win, 0, 0, 4)
        yield from api.win_fence(win)
        return float(value[0])


class RmaOutsideEpoch(MpiProgram):
    def main(self, api):
        win = yield from api.win_create(4)
        yield from api.win_put(win, 0, 0, np.ones(2))  # no epoch open
        return None


def test_native_put_fence_get():
    out = run_app_native(4, lambda r: RmaRing(r), TESTBOX)
    for me, (before, after) in enumerate(out.results):
        assert before == 0.0                      # epoch-opening snapshot
        assert after == float((me - 1) % 4)       # left neighbor's put


def test_native_accumulate_sums_all_ranks():
    out = run_app_native(4, lambda r: RmaAccumulate(r), TESTBOX)
    assert all(v == 4.0 for v in out.results)     # each rank added 1


def test_rma_outside_epoch_rejected():
    with pytest.raises(MpiError, match="epoch"):
        run_app_native(2, lambda r: RmaOutsideEpoch(r), TESTBOX)


def test_vasp6_with_win_works_natively_fails_under_mana():
    """The Table I constraint, end to end: the same VASP 6 build with
    MPI_Win enabled runs natively but cannot run under MANA."""
    cfg = DftConfig(nranks=4, workload=workload("CaPOH"), iterations=2,
                    vasp6=True, use_mpi_win=True)
    factory = lambda r: DftProxy(r, cfg, TESTBOX)
    native = run_app_native(4, factory, TESTBOX)
    assert len(native.results) == 4
    assert native.lib_calls.get("win_put", 0) > 0
    with pytest.raises(UnsupportedMpiFeature, match="MPI_Win"):
        ManaSession(4, factory, TESTBOX, ManaConfig.feature_2pc()).run()
