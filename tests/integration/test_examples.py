"""Smoke tests: every example script runs to completion.

The examples are part of the public API surface; they must keep working.
Each is executed in-process (runpy) with a trimmed argv where the script
supports one.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "pi = 3.141593" in out
    assert "identical: True" in out


def test_gromacs_scaling(capsys):
    run_example("gromacs_scaling.py", ["--max-nodes", "2", "--steps", "3"])
    out = capsys.readouterr().out
    assert "HASWELL" in out and "KNL" in out
    assert "ratio" in out


def test_vasp_checkpoint_restart(capsys):
    run_example(
        "vasp_checkpoint_restart.py",
        ["--workload", "WOSiH", "--ranks", "8", "--iterations", "2",
         "--machine", "testbox"],
    )
    out = capsys.readouterr().out
    assert "results identical to baseline: True" in out


def test_deadlock_demo(capsys):
    run_example("deadlock_demo.py")
    out = capsys.readouterr().out
    assert out.count("DEADLOCK") == 2     # original + master
    assert out.count("OK") == 3           # native, hybrid, pt2pt


def test_job_chaining(capsys):
    run_example("job_chaining.py")
    out = capsys.readouterr().out
    assert "identical to the uninterrupted run: True" in out


@pytest.mark.slow
def test_failure_recovery(capsys):
    run_example("failure_recovery.py")
    out = capsys.readouterr().out
    assert "results identical to the uninterrupted run: True" in out
