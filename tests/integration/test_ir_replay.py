"""Integration: the IR replay compiler driving REEXEC restarts.

The contract under test (ISSUE non-negotiable): with the no-op pass
pipeline the compiled replay is indistinguishable from the legacy
per-call log walk — same virtual times, same results; with the
optimizing pipeline the final virtual times and results still match
while scheduler events drop.  Bit-level stream identity is pinned by
``tests/property/test_fastpath_golden.py``; here we cover the runtime
wiring: per-resume compilation, image-level compilation shared across
restart rounds, divergence detection, and recovery interplay.
"""

import pytest

from repro.apps.micro import (
    AllreduceLoop,
    CommChurn,
    IcollStream,
    RandomPt2Pt,
    TokenRing,
)
from repro.errors import RestartError
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.ir_bridge import compile_image
from repro.mana.session import (
    HALTED,
    CheckpointPlan,
    resume_from_checkpoint,
)

CFG = ManaConfig.feature_2pc().but(record_replay=True)

APPS = {
    "ring": (4, lambda r: TokenRing(r, laps=8, compute_s=1e-3), 0.5),
    "allreduce": (4, lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3),
                  0.45),
    "randpt2pt": (5, lambda r: RandomPt2Pt(r, 5, rounds=8, seed=3,
                                           compute_s=1e-4), 0.5),
    "icoll": (4, lambda r: IcollStream(r, waves=5, inflight=3,
                                       compute_s=1e-3), 0.5),
    "churn": (4, lambda r: CommChurn(r, generations=4, compute_s=1e-3),
              0.6),
}


def save_halted(tmp_path, nranks, factory, frac, cfg=CFG,
                name="ckpt.img"):
    baseline = ManaSession(nranks, factory, TESTBOX, cfg).run()
    halted = ManaSession(nranks, factory, TESTBOX, cfg)
    out = halted.run(checkpoints=[
        CheckpointPlan(at=baseline.elapsed * frac, action="halt")
    ])
    assert out.results == [HALTED] * nranks
    path = tmp_path / name
    halted.save_checkpoint(path)
    return baseline, path


class TestCompiledReplay:
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("mode", ["noop", "opt"])
    def test_matches_legacy(self, tmp_path, app, mode):
        nranks, factory, frac = APPS[app]
        baseline, path = save_halted(tmp_path, nranks, factory, frac)
        legacy_sess = resume_from_checkpoint(path, factory, TESTBOX, CFG,
                                             replay_compile="off")
        legacy = legacy_sess.run()
        sess = resume_from_checkpoint(path, factory, TESTBOX, CFG,
                                      replay_compile=mode)
        out = sess.run()
        assert out.results == legacy.results == baseline.results
        assert out.elapsed == legacy.elapsed
        if mode == "opt":
            # the optimizing pipeline eliminates dead cooperative yields
            assert sess.sched.events_run < legacy_sess.sched.events_run
        else:
            assert sess.sched.events_run == legacy_sess.sched.events_run

    def test_restart_records_carry_mode(self, tmp_path):
        nranks, factory, frac = APPS["ring"]
        _, path = save_halted(tmp_path, nranks, factory, frac)
        sess = resume_from_checkpoint(path, factory, TESTBOX, CFG,
                                      replay_compile="opt")
        sess.run()
        recs = sess.rt.reexec_records
        assert len(recs) == nranks
        for rec in recs:
            assert rec["replay_compile"] == "opt"
            assert rec["compiled_ops"] is not None
            assert rec["replayed_calls"] > 0


class TestCompileImage:
    """compile_image: one compilation per saved image, shared across
    restart rounds (the Figure 3 regime)."""

    def test_rounds_share_programs(self, tmp_path):
        nranks, factory, frac = APPS["ring"]
        baseline, path = save_halted(tmp_path, nranks, factory, frac)
        cfg = CFG.but(replay_compile="opt")
        compiled = compile_image(path, cfg, TESTBOX)
        assert set(compiled) == set(range(nranks))
        outs = []
        for _ in range(3):
            sess = resume_from_checkpoint(path, factory, TESTBOX, CFG,
                                          replay_compile="opt",
                                          compiled=compiled)
            outs.append(sess.run())
        assert all(o.results == baseline.results for o in outs)
        assert len({o.elapsed for o in outs}) == 1
        # the cursors memoized their flat tape on the shared programs
        assert all(p._tape is not None for p in compiled.values())

    def test_mismatched_compilation_rejected(self, tmp_path):
        """Programs compiled against a different image must be refused,
        not silently replayed into divergence."""
        nranks, factory, frac = APPS["ring"]
        _, path = save_halted(tmp_path, nranks, factory, frac)
        other_factory = lambda r: TokenRing(r, laps=16, compute_s=1e-3)
        _, other = save_halted(tmp_path, nranks, other_factory, frac,
                               name="other.img")
        compiled = compile_image(other, CFG.but(replay_compile="opt"),
                                 TESTBOX)
        sess = resume_from_checkpoint(path, factory, TESTBOX, CFG,
                                      replay_compile="opt",
                                      compiled=compiled)
        with pytest.raises(RestartError, match="different image"):
            sess.run()

    def test_off_mode_ignores_precompiled(self, tmp_path):
        nranks, factory, frac = APPS["ring"]
        baseline, path = save_halted(tmp_path, nranks, factory, frac)
        compiled = compile_image(path, CFG.but(replay_compile="opt"),
                                 TESTBOX)
        sess = resume_from_checkpoint(path, factory, TESTBOX, CFG,
                                      replay_compile="off",
                                      compiled=compiled)
        out = sess.run()
        assert out.results == baseline.results


class TestDivergenceAndRecovery:
    def test_divergence_detected_under_compilation(self, tmp_path):
        """A nondeterministic program (different factory on resume) must
        still raise the divergence error through the IR interpreter."""
        nranks, factory, frac = APPS["ring"]
        _, path = save_halted(tmp_path, nranks, factory, frac)
        wrong = lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3)
        sess = resume_from_checkpoint(path, wrong, TESTBOX, CFG,
                                      replay_compile="opt")
        with pytest.raises(RestartError, match="replay divergence"):
            sess.run()

    def test_second_checkpoint_after_compiled_resume(self, tmp_path):
        """The compiled-resumed session keeps recording and survives a
        further in-session restart."""
        factory = lambda r: TokenRing(r, laps=10, compute_s=1e-3)
        baseline = ManaSession(4, factory, TESTBOX, CFG).run()
        halted = ManaSession(4, factory, TESTBOX, CFG)
        halted.run(checkpoints=[
            CheckpointPlan(at=baseline.elapsed * 0.3, action="halt")
        ])
        path = tmp_path / "c1.img"
        halted.save_checkpoint(path)
        sess = resume_from_checkpoint(path, factory, TESTBOX, CFG,
                                      replay_compile="opt")
        out = sess.run(checkpoints=[
            CheckpointPlan(at=baseline.elapsed * 0.4, action="restart")
        ])
        assert out.results == baseline.results
