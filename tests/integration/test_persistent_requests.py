"""Integration: persistent point-to-point requests (MPI_Send_init /
MPI_Recv_init / MPI_Start) — native, under MANA, and across restarts.

Persistent requests are an interesting MANA case: unlike ordinary
requests they are *exempt* from the Section III-A retirement machinery
until MPI_Request_free (completion does not invalidate the handle), and
the lower-half object must be recreated from MANA's record at restart —
with an active receive cycle re-posted and an active (eager-completed)
send cycle staged.
"""

import pytest

from repro.apps.base import MpiProgram
from repro.errors import MpiError
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan, run_app_native

CFG = ManaConfig.feature_2pc()


class PersistentPingPong(MpiProgram):
    """The canonical persistent-request loop: init once, start many."""

    def __init__(self, rank, rounds=6):
        super().__init__(rank)
        self.rounds = rounds

    def main(self, api):
        peer = 1 - api.rank
        send_slot = yield from api.send_init(None, dest=peer, tag=7)
        recv_slot = yield from api.recv_init(source=peer, tag=7)
        got = []
        for rnd in range(self.rounds):
            yield from api.compute(1e-3)
            yield from api.start(send_slot, data=(api.rank, rnd))
            yield from api.start(recv_slot)
            payload, _st = yield from api.wait(send_slot)
            data, st = yield from api.wait(recv_slot)
            assert not send_slot.is_null and not recv_slot.is_null
            got.append(data)
        yield from api.request_free(send_slot)
        yield from api.request_free(recv_slot)
        assert send_slot.is_null and recv_slot.is_null
        return got


class StartedRecvAtCheckpoint(MpiProgram):
    """A persistent receive whose cycle straddles the checkpoint."""

    def main(self, api):
        if api.rank == 0:
            yield from api.compute(0.03)      # checkpoint window
            yield from api.send("late", 1, tag=2)
            yield from api.barrier()
            return None
        slot = yield from api.recv_init(source=0, tag=2)
        yield from api.start(slot)            # active across the checkpoint
        yield from api.compute(0.03)
        data, _st = yield from api.wait(slot)
        yield from api.barrier()
        yield from api.request_free(slot)
        return data


class DrainedRecvAtCheckpoint(MpiProgram):
    """The message arrives before the checkpoint but the started cycle
    is only consumed afterwards — the drain must stage it."""

    def main(self, api):
        if api.rank == 0:
            yield from api.send("early", 1, tag=3)
            yield from api.barrier()
            yield from api.compute(0.03)      # checkpoint window
            yield from api.barrier()
            return None
        slot = yield from api.recv_init(source=0, tag=3)
        yield from api.start(slot)
        yield from api.barrier()              # message has arrived
        yield from api.compute(0.03)          # checkpoint window
        yield from api.barrier()
        data, st = yield from api.wait(slot)
        # second cycle after the restart, on the recreated lower half
        yield from api.start(slot)
        data2 = None
        flag = False
        while not flag:
            flag, data2, _ = yield from api.test(slot)
            if not flag:
                yield from api.compute(1e-4)
        yield from api.request_free(slot)
        return data, st.count, data2


class SecondSender(MpiProgram):
    """Companion for DrainedRecvAtCheckpoint's second cycle."""


def test_persistent_ping_pong_native_and_mana():
    factory = lambda r: PersistentPingPong(r)
    native = run_app_native(2, factory, TESTBOX)
    mana = ManaSession(2, factory, TESTBOX, CFG).run()
    assert native.results == mana.results
    assert native.results[0] == [(1, rnd) for rnd in range(6)]


@pytest.mark.parametrize("action", ["resume", "restart"])
def test_active_recv_cycle_across_checkpoint(action):
    factory = lambda r: StartedRecvAtCheckpoint(r)
    base = ManaSession(2, factory, TESTBOX, CFG).run()
    out = ManaSession(2, factory, TESTBOX, CFG).run(
        checkpoints=[CheckpointPlan(at=0.01, action=action)]
    )
    assert out.results == base.results
    assert out.results[1] == "late"


@pytest.mark.parametrize("action", ["resume", "restart"])
@pytest.mark.parametrize("get_status", [False, True])
def test_drained_persistent_cycle_staged(action, get_status):
    cfg = CFG.but(request_get_status=get_status)

    class WithSecondMessage(DrainedRecvAtCheckpoint):
        def main(self, api):
            if api.rank == 0:
                yield from api.send("early", 1, tag=3)
                yield from api.barrier()
                yield from api.compute(0.03)
                yield from api.barrier()
                yield from api.send("second", 1, tag=3)
                return None
            result = yield from super().main(api)
            return result

    factory = lambda r: WithSecondMessage(r)
    base = ManaSession(2, factory, TESTBOX, cfg).run()
    out = ManaSession(2, factory, TESTBOX, cfg).run(
        checkpoints=[CheckpointPlan(at=0.01, action=action)]
    )
    assert out.results == base.results
    data, count, data2 = out.results[1]
    assert data == "early" and count == len("early")
    assert data2 == "second"


def test_persistent_restart_telemetry():
    factory = lambda r: PersistentPingPong(r, rounds=8)
    base = ManaSession(2, factory, TESTBOX, CFG).run()
    session = ManaSession(2, factory, TESTBOX, CFG)
    out = session.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="restart")]
    )
    assert out.results == base.results
    per_rank = out.restarts[0]["per_rank"]
    assert all(v["persistent_recreated"] == 2 for v in per_rank.values())


def test_reexec_with_persistent_requests(tmp_path):
    from repro.mana.session import HALTED, resume_from_checkpoint

    cfg = CFG.but(record_replay=True)
    factory = lambda r: PersistentPingPong(r, rounds=8)
    base = ManaSession(2, factory, TESTBOX, cfg).run()
    halted = ManaSession(2, factory, TESTBOX, cfg)
    out = halted.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="halt")]
    )
    assert out.results == [HALTED] * 2
    path = tmp_path / "p.img"
    halted.save_checkpoint(path)
    resumed = resume_from_checkpoint(path, factory, TESTBOX, cfg).run()
    assert resumed.results == base.results


def test_start_on_active_request_rejected():
    class DoubleStart(MpiProgram):
        def main(self, api):
            slot = yield from api.recv_init(source=0, tag=1)
            yield from api.start(slot)
            yield from api.start(slot)  # illegal: still active

    with pytest.raises(MpiError, match="already-active"):
        run_app_native(1, lambda r: DoubleStart(r), TESTBOX)
