"""Integration: the Section VI deadlock detector (tools-interface
future work, implemented)."""

import pytest

from repro.apps.base import MpiProgram
from repro.apps.micro import BcastThenSend
from repro.errors import DeadlockError
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.deadlock import analyze

CFG = ManaConfig.feature_2pc()


class MutualRecv(MpiProgram):
    """Ranks 0 and 1 both receive first: the textbook deadlock."""

    def main(self, api):
        if api.rank in (0, 1):
            peer = 1 - api.rank
            data, _ = yield from api.recv(source=peer, tag=0)
            yield from api.send("never", peer, tag=0)
            return data
        # other ranks do independent work, then wait forever on rank 0
        for _ in range(3):
            yield from api.compute(1e-3)
            yield from api.barrier(comm=None) if False else None
        data, _ = yield from api.recv(source=0, tag=9)
        return data


class PartialDeadlock(MpiProgram):
    """Ranks 0/1 deadlock on each other; ranks 2/3 run fine."""

    def main(self, api):
        if api.rank == 0:
            data, _ = yield from api.recv(source=1, tag=0)
            return data
        if api.rank == 1:
            data, _ = yield from api.recv(source=0, tag=0)
            return data
        # ranks 2..: a healthy ping-pong
        peer = 5 - api.rank  # 2 <-> 3
        for i in range(200):
            if api.rank == 2:
                yield from api.send(i, peer, tag=1)
                data, _ = yield from api.recv(source=peer, tag=1)
            else:
                data, _ = yield from api.recv(source=peer, tag=1)
                yield from api.send(i, peer, tag=1)
            yield from api.compute(5e-5)
        return "healthy"


class AnySourceSaved(MpiProgram):
    """Rank 0 waits on ANY_SOURCE; rank 1 would deadlock it, but rank 2
    eventually sends — an OR-dependency that must NOT be reported."""

    def main(self, api):
        if api.rank == 0:
            from repro.simmpi.constants import ANY_SOURCE
            data, st = yield from api.recv(source=ANY_SOURCE, tag=0)
            yield from api.send("unblock", 1, tag=1)
            return data
        if api.rank == 1:
            data, _ = yield from api.recv(source=0, tag=1)
            return data
        yield from api.compute(5e-3)  # slow, but it does send
        yield from api.send("relief", 0, tag=0)
        return None


def test_monitor_names_the_mutual_recv_pair():
    factory = lambda r: PartialDeadlock(r)
    session = ManaSession(4, factory, TESTBOX, CFG)
    with pytest.raises(DeadlockError) as exc:
        session.run(deadlock_monitor=1e-3)
    text = str(exc.value)
    assert "DEADLOCK among ranks [0, 1]" in text
    assert "recv(source=1" in text and "recv(source=0" in text
    # the healthy pair is not accused
    assert "rank 2:" not in text and "rank 3:" not in text


def test_analyze_pure_function_on_live_session():
    """analyze() can be called at any pause point; on a healthy program
    it reports nothing."""
    from repro.apps.micro import AllreduceLoop

    factory = lambda r: AllreduceLoop(r, iters=4, compute_s=1e-3)
    session = ManaSession(4, factory, TESTBOX, CFG)
    procs = session._wire(())
    session.sched.run(until=2e-3)  # pause mid-run
    report = analyze(session.rt)
    assert not report.is_deadlock
    session.sched.run()  # finish cleanly
    assert [p.result for p in procs] == [AllreduceLoop.expected(4, 4)] * 4


def test_any_source_or_dependency_not_reported():
    factory = lambda r: AnySourceSaved(r)
    session = ManaSession(3, factory, TESTBOX, CFG)
    out = session.run(deadlock_monitor=5e-4)
    assert out.results[0] == "relief"
    assert session.deadlock_monitor.reports == []


def test_detects_barrier_before_bcast_deadlock_with_mpi_detail():
    """The Section III-E deadlock, diagnosed at the MPI level: the
    detector names the rank inside the collective and the rank stuck in
    the receive, rather than the kernel's generic park report."""
    factory = lambda r: BcastThenSend(r)
    session = ManaSession(2, factory, TESTBOX, ManaConfig.master())
    with pytest.raises(DeadlockError) as exc:
        session.run(deadlock_monitor=1e-3)
    text = str(exc.value)
    assert "DEADLOCK among ranks [0, 1]" in text
    assert "inside collective" in text      # rank 0, in the pre-Bcast barrier
    assert "recv(source=0" in text          # rank 1, waiting for the Send
