"""Integration: the extended API surface — sendrecv, probe, waitany,
testany, testall — in both bindings, including across checkpoints."""

import pytest

from repro.apps.base import MpiProgram
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan, run_app_native
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG

CFG = ManaConfig.feature_2pc()


def both_bindings(nranks, factory, plans=()):
    """Run natively and under MANA; results must agree."""
    native = run_app_native(nranks, factory, TESTBOX)
    mana = ManaSession(nranks, factory, TESTBOX, CFG).run(checkpoints=plans)
    assert mana.results == native.results
    return native, mana


class RingShift(MpiProgram):
    """Sendrecv ring shift: the canonical deadlock-free exchange."""

    def __init__(self, rank, rounds=4):
        super().__init__(rank)
        self.rounds = rounds

    def main(self, api):
        p, me = api.size, api.rank
        value = me
        for rnd in range(self.rounds):
            value, _st = yield from api.sendrecv(
                value, dest=(me + 1) % p, sendtag=rnd,
                source=(me - 1) % p, recvtag=rnd,
            )
        return value


class ProbeThenRecv(MpiProgram):
    def main(self, api):
        if api.rank == 0:
            yield from api.compute(1e-3)
            yield from api.send(b"x" * 37, 1, tag=9)
            return None
        status = yield from api.probe(source=0, tag=9)
        size_known = status.count
        data, st = yield from api.recv(0, 9)
        return size_known, st.count, len(data)


class WaitanyConsumer(MpiProgram):
    """Rank 0 receives from everyone with waitany, in completion order."""

    def __init__(self, rank, nranks):
        super().__init__(rank)
        self.nranks = nranks

    def main(self, api):
        if api.rank != 0:
            yield from api.compute(1e-4 * api.rank)  # staggered sends
            yield from api.send(api.rank * 10, 0, tag=1)
            return None
        slots = []
        for src in range(1, self.nranks):
            slot = yield from api.irecv(source=src, tag=1)
            slots.append(slot)
        got = []
        for _ in range(len(slots)):
            i, payload, st = yield from api.waitany(slots)
            got.append((i, payload))
        assert all(s.is_null for s in slots)
        extra = yield from api.waitany(slots)  # all-null: MPI returns empty
        assert extra == (None, None, None)
        return sorted(got)


class BatchTestall(MpiProgram):
    def __init__(self, rank, nranks):
        super().__init__(rank)
        self.nranks = nranks

    def main(self, api):
        if api.rank != 0:
            yield from api.compute(2e-4)
            yield from api.send(api.rank, 0, tag=2)
            return None
        slots = []
        for src in range(1, self.nranks):
            slot = yield from api.irecv(source=src, tag=2)
            slots.append(slot)
        flag_early, _ = yield from api.testall(slots)
        # testall must not have consumed anything on failure
        consumed_early = [s.is_null for s in slots]
        while True:
            flag, results = yield from api.testall(slots)
            if flag:
                break
            yield from api.compute(5e-5)
        payloads = sorted(p for p, _st in results)
        return flag_early, consumed_early, payloads


class PollerTestany(MpiProgram):
    def __init__(self, rank, nranks):
        super().__init__(rank)
        self.nranks = nranks

    def main(self, api):
        if api.rank != 0:
            yield from api.compute(1e-4)
            yield from api.send(api.rank, 0, tag=3)
            return None
        slots = []
        for src in range(1, self.nranks):
            slot = yield from api.irecv(source=src, tag=3)
            slots.append(slot)
        got = []
        while len(got) < len(slots):
            flag, i, payload, _st = yield from api.testany(slots)
            if flag:
                got.append(payload)
            else:
                yield from api.compute(5e-5)
        return sorted(got)


def test_sendrecv_ring():
    native, _ = both_bindings(5, lambda r: RingShift(r, rounds=5))
    # after p rounds the values return home
    assert native.results == list(range(5))


def test_sendrecv_survives_restart():
    factory = lambda r: RingShift(r, rounds=8)
    base = ManaSession(4, factory, TESTBOX, CFG).run()
    out = ManaSession(4, factory, TESTBOX, CFG).run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="restart")]
    )
    assert out.results == base.results


def test_probe_reports_size_without_consuming():
    native, _ = both_bindings(2, lambda r: ProbeThenRecv(r))
    assert native.results[1] == (37, 37, 37)


def test_waitany_collects_in_completion_order():
    n = 5
    native, _ = both_bindings(n, lambda r: WaitanyConsumer(r, n))
    # index i corresponds to source i+1 (payload (i+1)*10)
    assert native.results[0] == [(i, (i + 1) * 10) for i in range(n - 1)]


def test_testall_is_all_or_nothing():
    n = 4
    native, _ = both_bindings(n, lambda r: BatchTestall(r, n))
    flag_early, consumed_early, payloads = native.results[0]
    # the early testall (before messages arrive) must consume nothing
    assert flag_early is False
    assert consumed_early == [False] * (n - 1)
    assert payloads == [1, 2, 3]


def test_testany_mana():
    n = 4
    factory = lambda r: PollerTestany(r, n)
    out = ManaSession(n, factory, TESTBOX, CFG).run()
    assert out.results[0] == [1, 2, 3]


def test_waitany_checkpoint_restart_mid_wait():
    """A checkpoint landing while rank 0 is parked in waitany."""
    n = 4

    class SlowSenders(WaitanyConsumer):
        def main(self, api):
            if api.rank != 0:
                yield from api.compute(5e-3 * api.rank)  # long stagger
                yield from api.send(api.rank * 10, 0, tag=1)
                return None
            result = yield from super().main(api)
            return result

    factory = lambda r: SlowSenders(r, n)
    base = ManaSession(n, factory, TESTBOX, CFG).run()
    out = ManaSession(n, factory, TESTBOX, CFG).run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="restart")]
    )
    assert out.results == base.results


def test_reexec_with_waitany(tmp_path):
    from repro.mana.session import HALTED, resume_from_checkpoint

    cfg = CFG.but(record_replay=True)
    n = 4
    factory = lambda r: WaitanyConsumer(r, n)
    base = ManaSession(n, factory, TESTBOX, cfg).run()
    halted = ManaSession(n, factory, TESTBOX, cfg)
    out = halted.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="halt")]
    )
    assert out.results == [HALTED] * n
    path = tmp_path / "w.img"
    halted.save_checkpoint(path)
    resumed = resume_from_checkpoint(path, factory, TESTBOX, cfg).run()
    assert resumed.results == base.results
