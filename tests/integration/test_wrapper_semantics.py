"""Integration: wrapper-level semantics the paper calls out.

- MPI_Alloc_mem -> upper-half malloc: contents survive a restart
  (Section III item 1's POSIX-conversion example);
- PROC_NULL point-to-point through the wrappers;
- overhead accounting: lower-half call counts and modeled overhead time;
- tag validation at the wrapper boundary;
- request-slot semantics (MPI_REQUEST_NULL behaviour).
"""

import numpy as np
import pytest

from repro.apps.base import MpiProgram
from repro.errors import MpiError
from repro.hosts import CORI_HASWELL, TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan, run_app_native
from repro.simmpi.constants import PROC_NULL, REQUEST_NULL

CFG = ManaConfig.feature_2pc()


class AllocMemUser(MpiProgram):
    """Writes into MPI_Alloc_mem memory before a restart, reads after."""

    def main(self, api):
        mem = yield from api.alloc_mem(4096)
        mem.data[0:5] = b"hello"
        yield from api.barrier()
        yield from api.compute(0.02)  # the checkpoint window
        yield from api.barrier()
        value = bytes(mem.data[0:5])
        yield from api.free_mem(mem)
        return value


def test_alloc_mem_survives_restart_under_mana():
    """MANA converts MPI_Alloc_mem to an upper-half malloc, so the
    contents survive the lower-half teardown — unlike a real lower-half
    allocation, which dies with the library."""
    factory = lambda r: AllocMemUser(r)
    out = ManaSession(2, factory, TESTBOX, CFG).run(
        checkpoints=[CheckpointPlan(at=0.01, action="restart")]
    )
    assert out.results == [b"hello", b"hello"]
    assert len(out.restarts) == 1


class ProcNullUser(MpiProgram):
    def main(self, api):
        yield from api.send("ignored", PROC_NULL, tag=1)
        data, st = yield from api.recv(source=PROC_NULL, tag=1)
        slot = yield from api.isend("x", PROC_NULL, tag=2)
        flag, _p, _s = yield from api.test(slot)
        return data, st.count, flag


def test_proc_null_through_wrappers():
    native = run_app_native(1, lambda r: ProcNullUser(r), TESTBOX)
    mana = ManaSession(1, lambda r: ProcNullUser(r), TESTBOX, CFG).run()
    assert native.results == mana.results == [(None, 0, True)]


class TagAbuser(MpiProgram):
    def main(self, api):
        yield from api.send("x", 0, tag=1 << 31)  # beyond MPI_TAG_UB
        return None


def test_tag_validation_at_wrapper_boundary():
    with pytest.raises(MpiError, match="MPI_TAG_UB"):
        ManaSession(1, lambda r: TagAbuser(r), TESTBOX, CFG).run()
    with pytest.raises(MpiError, match="MPI_TAG_UB"):
        run_app_native(1, lambda r: TagAbuser(r), TESTBOX)


class NullSlotUser(MpiProgram):
    def main(self, api):
        from repro.mana.handles import RequestSlot

        null_slot = RequestSlot()
        flag, payload, st = yield from api.test(null_slot)
        payload2, st2 = yield from api.wait(null_slot)
        return flag, payload, payload2


def test_null_request_semantics():
    """Test/Wait on MPI_REQUEST_NULL succeed immediately (MPI-3.1)."""
    out = ManaSession(1, lambda r: NullSlotUser(r), TESTBOX, CFG).run()
    assert out.results == [(True, None, None)]


class CountedApp(MpiProgram):
    def main(self, api):
        for i in range(5):
            yield from api.compute(1e-4)
            if api.rank == 0:
                yield from api.send(i, 1, tag=0)
            elif api.rank == 1:
                yield from api.recv(0, 0)
            yield from api.allreduce(1)
        return None


def test_overhead_accounting():
    session = ManaSession(2, lambda r: CountedApp(r), CORI_HASWELL,
                          ManaConfig.master())
    out = session.run()
    for stats in out.rank_stats:
        assert stats.lower_half_calls > 0
        assert stats.overhead_time > 0
        assert stats.collective_calls >= 5
    sender = out.rank_stats[0]
    assert sender.wrapper_calls["send"] == 5
    assert sender.wrapper_calls["allreduce"] == 5
    # MANA's modeled overhead is part of the virtual elapsed time
    native = run_app_native(2, lambda r: CountedApp(r), CORI_HASWELL)
    assert out.elapsed > native.elapsed


def test_overhead_time_larger_on_knl():
    """The calibration mechanism: wrapper bookkeeping runs on the host
    core, so identical call counts cost more virtual time on KNL."""
    from repro.hosts import CORI_KNL

    h = ManaSession(2, lambda r: CountedApp(r), CORI_HASWELL,
                    ManaConfig.master())
    h.run()
    k = ManaSession(2, lambda r: CountedApp(r), CORI_KNL,
                    ManaConfig.master())
    k.run()
    assert (k.rt.ranks[0].stats.overhead_time
            > h.rt.ranks[0].stats.overhead_time)


class WildcardOrdering(MpiProgram):
    """ANY_SOURCE receives must preserve per-sender FIFO order."""

    def main(self, api):
        from repro.simmpi.constants import ANY_SOURCE, ANY_TAG

        if api.rank != 0:
            for i in range(6):
                yield from api.send((api.rank, i), 0, tag=api.rank)
            return None
        seen = {}
        for _ in range(6 * (api.size - 1)):
            (src, i), _st = yield from api.recv(ANY_SOURCE, ANY_TAG)
            assert seen.get(src, -1) < i  # strictly increasing per sender
            seen[src] = i
        return dict(seen)


@pytest.mark.parametrize("runner", ["native", "mana"])
def test_wildcard_fifo_per_sender(runner):
    factory = lambda r: WildcardOrdering(r)
    if runner == "native":
        out = run_app_native(4, factory, TESTBOX)
    else:
        out = ManaSession(4, factory, TESTBOX, CFG).run()
    assert out.results[0] == {1: 5, 2: 5, 3: 5}


def test_wildcard_fifo_across_restart():
    factory = lambda r: WildcardOrdering(r)
    base = ManaSession(4, factory, TESTBOX, CFG).run()
    out = ManaSession(4, factory, TESTBOX, CFG).run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="restart")]
    )
    assert out.results == base.results
