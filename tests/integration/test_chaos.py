"""The crash-anywhere chaos harness and its campaign acceptance.

* a fault-free run passes :func:`verify_run` clean;
* a small inline sweep across every fault kind produces zero invariant
  violations — every injection point ends completed, recovered, or
  typed-job-lost;
* the sweep is deterministic: same seed, bit-identical classifications
  and virtual times;
* the acceptance campaign — 100 injection points × 3 fault kinds = 300
  cells through the crash-isolated campaign runner — finishes with
  every cell ``ok`` or ``lost`` (work-lost accounted), zero failures.
"""

import pytest

from repro.faults import chaos
from repro.faults.chaos import (
    CHAOS_KINDS,
    chaos_golden,
    run_chaos_point,
    run_chaos_sweep,
    verify_run,
)


@pytest.fixture(scope="module")
def golden():
    return chaos_golden()


def test_fault_free_run_verifies_clean(golden):
    sess = chaos._session(golden["nranks"], golden["laps"])
    out = sess.run(checkpoint_interval=golden["interval"])
    assert verify_run(sess, out, golden["expected"], lost=False) == []
    assert out.results == golden["expected"]


def test_unknown_kind_rejected(golden):
    with pytest.raises(ValueError, match="unknown chaos kind"):
        run_chaos_point("meteor_strike", 10, golden=golden)


def test_every_kind_sweeps_clean():
    """The core tentpole invariant, across ALL fault kinds: every
    injection point ends in exactly one accounted outcome."""
    sweep = run_chaos_sweep(kinds=CHAOS_KINDS, points=6)
    summary = sweep["summary"]
    assert summary["violations"] == 0
    assert summary["total"] == len(CHAOS_KINDS) * 6
    for point in sweep["points"]:
        assert point["classification"] in ("completed", "recovered", "lost")
        if point["classification"] == "lost":
            # typed, accounted degradation — never silent
            assert point["error"]
            assert point["work_lost"] >= 0.0
        if point["classification"] == "recovered":
            assert point["recoveries"] >= 1
            assert point["mttr"] is not None and point["mttr"] > 0.0


def test_storm_victims_merge_into_fewer_episodes(golden):
    """Depth-3 storms with gaps below the detection latency fold their
    victims into a shared detection: some surviving point recovers all
    three kills in fewer than three episodes (the union-merge path).
    The guaranteed *mid-replay* cascade — a kill on the rebuilt
    incarnation before its replay completes — is pinned down
    deterministically in test_recovery_under_fire."""
    sweep = run_chaos_sweep(kinds=("crash_storm",), points=10, depth=3)
    assert sweep["summary"]["violations"] == 0
    recovered = [p for p in sweep["points"]
                 if p["classification"] == "recovered"]
    assert recovered
    assert any(p["recoveries"] < 3 for p in recovered)
    # every episode is accounted: attempts ≥ one per recovery record
    assert all(p["attempts"] >= p["recoveries"] for p in recovered)


def test_sweep_is_deterministic():
    a = run_chaos_sweep(kinds=("kill_rank", "oob_delay"), points=5)
    b = run_chaos_sweep(kinds=("kill_rank", "oob_delay"), points=5)
    assert a == b  # classifications, virtual times, records — everything


def test_chaos_campaign_acceptance(tmp_path):
    """300 injection points × 3 fault kinds through the campaign
    runner: zero hangs, zero unhandled exceptions, zero silently-wrong
    results; every cell classified ok (completed/recovered) or lost."""
    from repro.campaign.runner import run_campaign
    from repro.campaign.spec import spec_chaos
    from repro.campaign.store import CampaignStore

    spec = spec_chaos(points=100)
    assert len(spec.cells()) == 300
    run = run_campaign(spec, tmp_path)
    assert run.total == 300
    assert run.failed_cells == 0, run.counts
    assert set(run.counts) <= {"ok", "lost"}
    records = CampaignStore(tmp_path).records()
    assert len(records) == 300
    for rec in records.values():
        if rec["status"] == "ok":
            assert rec["result"]["classification"] in ("completed",
                                                       "recovered")
        else:
            assert rec["status"] == "lost"
            assert rec["result"]["classification"] == "lost"
            assert rec["result"]["work_lost"] >= 0.0
            assert "job lost" in rec["error"]
