"""Integration: applications under MANA produce native-identical results,
with and without checkpoints."""

import pytest

from repro.apps.micro import AllreduceLoop, IcollStream, TokenRing
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan, run_app_native

CONFIGS = {
    "master": ManaConfig.master(),
    "feature/2pc": ManaConfig.feature_2pc(),
}


def run_mana(nranks, factory, cfg, plans=()):
    session = ManaSession(nranks, factory, machine=TESTBOX, cfg=cfg)
    return session.run(checkpoints=plans)


class TestNoCheckpoint:
    @pytest.mark.parametrize("cfg_name", list(CONFIGS))
    def test_token_ring_matches_native(self, cfg_name):
        factory = lambda r: TokenRing(r, laps=3)
        native = run_app_native(4, factory, TESTBOX)
        mana = run_mana(4, factory, CONFIGS[cfg_name])
        assert mana.results == native.results
        assert mana.results[2] == TokenRing.expected(2, 4, 3)
        # MANA costs something
        assert mana.elapsed > native.elapsed

    @pytest.mark.parametrize("cfg_name", list(CONFIGS))
    def test_allreduce_loop(self, cfg_name):
        factory = lambda r: AllreduceLoop(r, iters=4)
        mana = run_mana(5, factory, CONFIGS[cfg_name])
        assert mana.results == [AllreduceLoop.expected(5, 4)] * 5

    def test_icoll_stream(self):
        factory = lambda r: IcollStream(r, waves=3, inflight=2)
        mana = run_mana(4, factory, ManaConfig.feature_2pc())
        assert mana.results == [IcollStream.expected(4, 3, 2)] * 4

    def test_master_slower_than_2pc_on_collectives(self):
        factory = lambda r: AllreduceLoop(r, iters=10, compute_s=1e-5)
        master = run_mana(8, factory, ManaConfig.master())
        two_pc = run_mana(8, factory, ManaConfig.feature_2pc())
        assert master.elapsed > two_pc.elapsed


class TestCheckpointResume:
    @pytest.mark.parametrize("cfg_name", list(CONFIGS))
    def test_token_ring_with_mid_run_checkpoint(self, cfg_name):
        factory = lambda r: TokenRing(r, laps=6, compute_s=1e-3)
        baseline = run_mana(4, factory, CONFIGS[cfg_name])
        plans = [CheckpointPlan(at=baseline.elapsed * 0.4, action="resume")]
        ck = run_mana(4, factory, CONFIGS[cfg_name], plans)
        assert ck.results == baseline.results
        assert len(ck.checkpoints) == 1
        rec = ck.checkpoints[0]
        assert rec["checkpoint_time"] > 0
        assert rec["image_bytes_total"] > 0

    @pytest.mark.parametrize("cfg_name", list(CONFIGS))
    def test_allreduce_with_checkpoint(self, cfg_name):
        factory = lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3)
        baseline = run_mana(4, factory, CONFIGS[cfg_name])
        plans = [CheckpointPlan(at=baseline.elapsed * 0.5, action="resume")]
        ck = run_mana(4, factory, CONFIGS[cfg_name], plans)
        assert ck.results == [AllreduceLoop.expected(4, 8)] * 4

    def test_two_checkpoints(self):
        factory = lambda r: AllreduceLoop(r, iters=10, compute_s=1e-3)
        baseline = run_mana(3, factory, ManaConfig.feature_2pc())
        plans = [
            CheckpointPlan(at=baseline.elapsed * 0.3),
            CheckpointPlan(at=baseline.elapsed * 0.7),
        ]
        ck = run_mana(3, factory, ManaConfig.feature_2pc(), plans)
        assert ck.results == baseline.results
        assert len(ck.checkpoints) == 2


class TestCheckpointRestart:
    @pytest.mark.parametrize("cfg_name", list(CONFIGS))
    def test_token_ring_restart(self, cfg_name):
        factory = lambda r: TokenRing(r, laps=6, compute_s=1e-3)
        baseline = run_mana(4, factory, CONFIGS[cfg_name])
        plans = [CheckpointPlan(at=baseline.elapsed * 0.4, action="restart")]
        ck = run_mana(4, factory, CONFIGS[cfg_name], plans)
        assert ck.results == baseline.results
        assert len(ck.restarts) == 1
        assert ck.restarts[0]["incarnation"] == 1

    @pytest.mark.parametrize("cfg_name", list(CONFIGS))
    def test_allreduce_restart(self, cfg_name):
        factory = lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3)
        baseline = run_mana(4, factory, CONFIGS[cfg_name])
        plans = [CheckpointPlan(at=baseline.elapsed * 0.5, action="restart")]
        ck = run_mana(4, factory, CONFIGS[cfg_name], plans)
        assert ck.results == [AllreduceLoop.expected(4, 8)] * 4

    def test_icoll_stream_restart_replays_log(self):
        factory = lambda r: IcollStream(r, waves=4, inflight=3, compute_s=1e-3)
        baseline = run_mana(4, factory, ManaConfig.feature_2pc())
        plans = [CheckpointPlan(at=baseline.elapsed * 0.5, action="restart")]
        ck = run_mana(4, factory, ManaConfig.feature_2pc(), plans)
        assert ck.results == [IcollStream.expected(4, 4, 3)] * 4
        per_rank = ck.restarts[0]["per_rank"]
        assert all(v["icolls_replayed"] > 0 for v in per_rank.values())

    def test_repeated_restarts(self):
        factory = lambda r: TokenRing(r, laps=10, compute_s=1e-3)
        baseline = run_mana(3, factory, ManaConfig.feature_2pc())
        plans = [
            CheckpointPlan(at=baseline.elapsed * f, action="restart")
            for f in (0.2, 0.5, 0.8)
        ]
        ck = run_mana(3, factory, ManaConfig.feature_2pc(), plans)
        assert ck.results == baseline.results
        assert ck.restarts[-1]["incarnation"] == 3
