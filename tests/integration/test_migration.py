"""Integration: cross-machine and elastic restart.

The checkpoint image holds only the *portable upper half* (replay log,
protocol state, handles, app state); the lower-half binding — costs,
FS-register tier, network and burst-buffer models — is re-derived from
the restore target's :class:`MachineSpec`.  These tests pin the three
restore modes: same-machine (bit-identical, silent), cross-machine
(identical results, MigrationWarning, target-machine costs), and
elastic (different rank count via app-level re-decomposition).
"""

import warnings

import pytest

from repro.apps.md_proxy import MdConfig, MdProxy
from repro.apps.micro import AllreduceLoop, ElasticBlockSum, RandomPt2Pt
from repro.errors import MigrationWarning, RestartError
from repro.hosts import CORI_HASWELL, PERLMUTTER, TESTBOX, TESTBOX_MN
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import (
    HALTED,
    CheckpointPlan,
    resume_elastic,
    resume_from_checkpoint,
)

CFG = ManaConfig.feature_2pc().but(record_replay=True)


def halt_and_save(tmp_path, nranks, factory, frac, machine=TESTBOX,
                  cfg=CFG, name="ckpt.img"):
    """Run to completion for reference, then halt a fresh run at ``frac``
    of the runtime and save its image."""
    baseline = ManaSession(nranks, factory, machine, cfg).run()
    halted = ManaSession(nranks, factory, machine, cfg)
    out = halted.run(
        checkpoints=[CheckpointPlan(at=baseline.elapsed * frac,
                                    action="halt")]
    )
    assert out.results == [HALTED] * nranks
    path = tmp_path / name
    halted.save_checkpoint(path)
    return baseline, path


class TestCrossMachineRestore:
    def test_same_machine_is_silent_and_deterministic(self, tmp_path):
        factory = lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3)
        baseline, path = halt_and_save(tmp_path, 4, factory, 0.5)
        with warnings.catch_warnings():
            warnings.simplefilter("error", MigrationWarning)
            first = resume_from_checkpoint(path, factory, TESTBOX, CFG).run()
            second = resume_from_checkpoint(path, factory, TESTBOX, CFG).run()
        assert first.results == baseline.results
        # bit-identical: the binding path changes nothing on the source
        # machine (same costs, same float-op order, same event order)
        assert first.results == second.results
        assert first.elapsed == second.elapsed

    @pytest.mark.parametrize("target", [PERLMUTTER, TESTBOX_MN],
                             ids=lambda m: m.name)
    def test_cross_machine_preserves_results(self, tmp_path, target):
        """A cori-haswell image restores on a different machine: results
        and protocol counters survive, elapsed reflects target costs."""
        factory = lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3)
        baseline, path = halt_and_save(tmp_path, 4, factory, 0.5,
                                       machine=CORI_HASWELL)
        with warnings.catch_warnings():
            warnings.simplefilter("error", MigrationWarning)
            same = resume_from_checkpoint(
                path, factory, CORI_HASWELL, CFG).run()
        with pytest.warns(MigrationWarning, match="haswell"):
            moved = resume_from_checkpoint(path, factory, target, CFG).run()
        # the application cannot tell it moved
        assert moved.results == baseline.results
        assert moved.results == same.results
        # the protocol replayed the same communication structure
        assert moved.total_collective_calls == same.total_collective_calls
        assert moved.total_pt2pt_calls == same.total_pt2pt_calls
        # ... but time now comes from the target machine's lower half
        assert moved.elapsed != same.elapsed

    def test_cross_machine_emits_trace_event(self, tmp_path):
        from repro.util.trace import RingBufferSink

        factory = lambda r: AllreduceLoop(r, iters=6, compute_s=1e-3)
        _, path = halt_and_save(tmp_path, 4, factory, 0.5,
                                machine=CORI_HASWELL)
        sink = RingBufferSink()
        with pytest.warns(MigrationWarning):
            sess = resume_from_checkpoint(
                path, factory, PERLMUTTER, CFG, trace_sink=sink)
        crossings = [e for e in sink.events
                     if e.kind == "cross_machine_restore"]
        assert len(crossings) == 1
        ev = crossings[0].detail
        assert ev["source_machine"] == "haswell"
        assert ev["target_machine"] == "perlmutter"
        assert ev["target_fs_tier"]  # the re-derived lower half's tier
        sess.run()

    def test_unknown_source_machine_rejected(self, tmp_path):
        from repro.util import serde

        factory = lambda r: AllreduceLoop(r, iters=6, compute_s=1e-3)
        _, path = halt_and_save(tmp_path, 4, factory, 0.5)
        saved = serde.loads(path.read_bytes())
        saved["machine"] = "retired-cluster"
        saved["provenance"]["machine"] = "retired-cluster"
        path.write_bytes(serde.dumps(saved))
        with pytest.raises(ValueError, match="unknown machine"):
            resume_from_checkpoint(path, factory, TESTBOX, CFG)

    def test_image_header_carries_provenance(self, tmp_path):
        """Every per-rank frame stamps where it was taken."""
        from repro.mana.checkpoint import CheckpointImage

        factory = lambda r: AllreduceLoop(r, iters=6, compute_s=1e-3)
        baseline = ManaSession(4, factory, CORI_HASWELL, CFG).run()
        halted = ManaSession(4, factory, CORI_HASWELL, CFG)
        halted.run(checkpoints=[
            CheckpointPlan(at=baseline.elapsed * 0.5, action="halt")
        ])
        for mrank in halted.rt.ranks:
            img = mrank.last_image
            assert img.machine == "haswell"
            assert img.kernel == CORI_HASWELL.linux_kernel
            back = CheckpointImage.from_bytes(img.to_bytes())
            assert (back.machine, back.kernel) == (img.machine, img.kernel)


class TestElasticRestart:
    @pytest.mark.parametrize("new_nranks", [2, 3, 6])
    def test_blocksum_invariant_across_worlds(self, tmp_path, new_nranks):
        factory = lambda r: ElasticBlockSum(r, 4, iters=6)
        baseline, path = halt_and_save(tmp_path, 4, factory, 0.5)
        want = ElasticBlockSum.expected(64, 6)
        assert baseline.results == [want] * 4
        new_factory = lambda r: ElasticBlockSum(r, new_nranks, iters=6)
        out = resume_elastic(path, new_factory, TESTBOX,
                             nranks=new_nranks).run()
        assert out.results == [want] * new_nranks

    def test_elastic_resplit_is_deterministic(self, tmp_path):
        """Two elastic restarts of one image are bit-identical — the new
        world's comm_splits re-derive the same subcommunicators."""
        factory = lambda r: ElasticBlockSum(r, 4, iters=6)
        _, path = halt_and_save(tmp_path, 4, factory, 0.5)
        new_factory = lambda r: ElasticBlockSum(r, 6, iters=6)
        first = resume_elastic(path, new_factory, TESTBOX, nranks=6).run()
        second = resume_elastic(path, new_factory, TESTBOX, nranks=6).run()
        assert first.results == second.results
        assert first.elapsed == second.elapsed
        assert first.total_collective_calls == second.total_collective_calls

    def test_elastic_emits_trace_event(self, tmp_path):
        from repro.util.trace import RingBufferSink

        factory = lambda r: ElasticBlockSum(r, 4, iters=6)
        _, path = halt_and_save(tmp_path, 4, factory, 0.5)
        new_factory = lambda r: ElasticBlockSum(r, 2, iters=6)
        sink = RingBufferSink()
        sess = resume_elastic(path, new_factory, TESTBOX, nranks=2,
                              trace_sink=sink)
        restores = [e for e in sink.events if e.kind == "elastic_restore"]
        assert len(restores) == 1
        assert restores[0].detail["source_ranks"] == 4
        assert restores[0].detail["target_ranks"] == 2
        sess.run()

    def test_elastic_onto_new_machine(self, tmp_path):
        """Migration and re-decomposition compose: warn + re-split."""
        factory = lambda r: ElasticBlockSum(r, 4, iters=6)
        _, path = halt_and_save(tmp_path, 4, factory, 0.5,
                                machine=CORI_HASWELL)
        new_factory = lambda r: ElasticBlockSum(r, 3, iters=6)
        with pytest.warns(MigrationWarning, match="haswell"):
            out = resume_elastic(path, new_factory, PERLMUTTER,
                                 nranks=3).run()
        assert out.results == [ElasticBlockSum.expected(64, 6)] * 3

    def test_unsupported_program_refuses(self, tmp_path):
        factory = lambda r: AllreduceLoop(r, iters=8, compute_s=1e-3)
        _, path = halt_and_save(tmp_path, 4, factory, 0.5)
        with pytest.raises(RestartError, match="elastic restart"):
            resume_elastic(path, factory, TESTBOX, nranks=2)

    def test_md_proxy_elastic_determinism(self, tmp_path):
        """The MD proxy re-splits its particle blocks; two elastic
        restarts agree exactly and every rank sees one energy trace."""
        md4 = MdConfig(nranks=4, steps=8, reduce_every=2)
        factory = lambda r: MdProxy(r, md4, TESTBOX)
        baseline, path = halt_and_save(tmp_path, 4, factory, 0.5)
        md2 = MdConfig(nranks=2, steps=8, reduce_every=2)
        new_factory = lambda r: MdProxy(r, md2, TESTBOX)
        first = resume_elastic(path, new_factory, TESTBOX, nranks=2).run()
        second = resume_elastic(path, new_factory, TESTBOX, nranks=2).run()
        assert first.results == second.results
        assert len(first.results) == 2
        traces = {r[1] for r in first.results}
        assert len(traces) == 1  # the energy allreduce agrees world-wide


class TestElasticDrainCheck:
    def test_flags_receives_from_vanished_ranks(self, tmp_path):
        from repro.mana.ir_bridge import job_drain_report, programs_from_image

        # cut late: RandomPt2Pt sends eagerly and receives at the end,
        # so receives (with resolved Status sources) only appear in the
        # log once the cut lands in the receive phase
        factory = lambda r: RandomPt2Pt(r, 5, rounds=8, seed=3,
                                        compute_s=1e-4)
        _, path = halt_and_save(tmp_path, 5, factory, 0.9)
        _meta, programs = programs_from_image(path)
        # shrinking to 3 ranks: receives resolved from ranks 3/4 can
        # never rematch in the new world
        shrunk = job_drain_report(programs, elastic_world=3)
        assert shrunk["unmatchable_recvs"] > 0
        assert all("unmatchable_recvs" in pr
                   for pr in shrunk["per_rank"].values())
        # the old world itself is clean by construction
        same = job_drain_report(programs, elastic_world=5)
        assert same["unmatchable_recvs"] == 0
        # without the elastic question, the report shape is unchanged
        plain = job_drain_report(programs)
        assert "unmatchable_recvs" not in plain
