"""Integration: the Section III-A reviewer alternative — non-destructive
MPI_Request_get_status interrogation instead of two-step retirement."""

import pytest

from repro.apps.micro import RandomPt2Pt, TokenRing
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan
from repro.apps.base import MpiProgram

CFG_GS = ManaConfig.feature_2pc().but(request_get_status=True)
CFG_2STEP = ManaConfig.feature_2pc()


class PendingIrecvAtCheckpoint(MpiProgram):
    """Rank 1 posts an irecv whose message arrives before the checkpoint
    but is only waited on afterwards — the exact case where classic MANA
    internally completes the request (step one of two-step retirement)
    and the get_status variant leaves it live in the lower half."""

    def main(self, api):
        if api.rank == 0:
            yield from api.send("payload", 1, tag=4)
            yield from api.barrier()
            yield from api.compute(0.02)  # the checkpoint window
            yield from api.barrier()
            return None
        slot = yield from api.irecv(source=0, tag=4)
        yield from api.barrier()          # message arrives, request done
        yield from api.compute(0.02)      # the checkpoint window
        yield from api.barrier()          # both ranks check in here; the
        #                                   request is still unconsumed
        payload, st = yield from api.wait(slot)
        return payload, st.count


@pytest.mark.parametrize("action", ["resume", "restart"])
def test_get_status_mode_preserves_results(action):
    factory = lambda r: PendingIrecvAtCheckpoint(r)
    base = ManaSession(2, factory, TESTBOX, CFG_GS).run()
    session = ManaSession(2, factory, TESTBOX, CFG_GS)
    out = session.run(
        checkpoints=[CheckpointPlan(at=0.01, action=action)]
    )
    assert out.results == base.results
    assert out.results[1] == ("payload", len("payload"))


def test_get_status_interrogates_non_destructively():
    """With get_status, the drain uses the non-destructive query (the
    request stays live through the drain; it is only materialized into
    upper-half storage when the image is built); the classic algorithm
    consumes it with MPI_Test during the drain itself."""
    factory = lambda r: PendingIrecvAtCheckpoint(r)

    gs = ManaSession(2, factory, TESTBOX, CFG_GS)
    out_gs = gs.run(checkpoints=[CheckpointPlan(at=0.01, action="resume")])
    assert out_gs.lib_calls.get("request_get_status", 0) >= 1

    classic = ManaSession(2, factory, TESTBOX, CFG_2STEP)
    out_classic = classic.run(
        checkpoints=[CheckpointPlan(at=0.01, action="resume")]
    )
    assert out_classic.lib_calls.get("request_get_status", 0) == 0
    # classic mode internally completed the pending receive at the drain
    assert classic.rt.ranks[1].vreqs.internal_completions >= 1


def test_get_status_materializes_at_restart():
    """On restart the lower half dies, so even the get_status variant
    must capture completed receives at snapshot time — and must not
    double-count their bytes."""
    factory = lambda r: PendingIrecvAtCheckpoint(r)
    session = ManaSession(2, factory, TESTBOX, CFG_GS)
    out = session.run(
        checkpoints=[CheckpointPlan(at=0.01, action="restart")]
    )
    assert out.results[1] == ("payload", len("payload"))
    # byte accounting balanced at the end
    m0, m1 = session.rt.ranks
    assert (
        m0.counters.total_sent()[0] + m1.counters.total_sent()[0]
        == m0.counters.total_received()[0]
        + m1.counters.total_received()[0]
        + m0.drain_buffer.nbytes()
        + m1.drain_buffer.nbytes()
    )


@pytest.mark.parametrize("frac", [0.2, 0.5, 0.8])
def test_get_status_random_traffic(frac):
    nranks = 5
    factory = lambda r: RandomPt2Pt(r, nranks, rounds=8, seed=21)
    base = ManaSession(nranks, factory, TESTBOX, CFG_GS).run()
    out = ManaSession(nranks, factory, TESTBOX, CFG_GS).run(
        checkpoints=[CheckpointPlan(at=base.elapsed * frac, action="restart")]
    )
    assert out.results == base.results


def test_get_status_with_reexec(tmp_path):
    from repro.mana.session import HALTED, resume_from_checkpoint

    cfg = CFG_GS.but(record_replay=True)
    factory = lambda r: TokenRing(r, laps=6, compute_s=1e-3)
    base = ManaSession(3, factory, TESTBOX, cfg).run()
    halted = ManaSession(3, factory, TESTBOX, cfg)
    out = halted.run(
        checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="halt")]
    )
    assert out.results == [HALTED] * 3
    path = tmp_path / "gs.img"
    halted.save_checkpoint(path)
    resumed = resume_from_checkpoint(path, factory, TESTBOX, cfg).run()
    assert resumed.results == base.results
