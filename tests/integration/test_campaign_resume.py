"""Campaign resumability under real SIGKILL.

The campaign layer's claim mirrors the simulator's checkpoint/restart
story: every finished cell is durable the instant its journal line is
fsync'd, so killing the orchestrator — not just a worker — loses at
most the cells that were in flight.  These tests exercise the claim
with actual signals against the actual CLI: a campaign whose workers
get SIGKILL'd mid-cell (the smoke spec injects one), and whose parent
process is SIGKILL'd mid-run, must resume to a final aggregate
bit-identical to a never-interrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignStore, aggregate_store, spec_smoke

CELLS = 12  # grid cells; + 3 injected extras (raise / sigkill / flaky)


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _cli(*args, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", *args],
        capture_output=True, text=True, env=_env(), timeout=120,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"campaign {' '.join(args)} failed:\n{proc.stdout}{proc.stderr}"
        )
    return proc


def _run_args(root):
    return ("run", "--spec", "smoke", "--seeds", str(CELLS),
            "--dir", str(root), "--workers", "2")


def _spec():
    return spec_smoke(cells=CELLS)


def _journal_lines(store):
    if not store.journal_path.exists():
        return []
    return [ln for ln in store.journal_path.read_text().splitlines()
            if ln.strip()]


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    """One straight-through run: the baseline every resumed run must
    reproduce bit-for-bit."""
    root = tmp_path_factory.mktemp("campaign") / "straight"
    _cli(*_run_args(root))
    return aggregate_store(CampaignStore(root))


def test_baseline_survives_injected_worker_kill(uninterrupted):
    # the smoke spec SIGKILLs one worker mid-cell and raises in another;
    # the campaign still finishes every cell
    assert uninterrupted["cells_total"] == CELLS + 3
    assert uninterrupted["statuses"] == \
        {"crashed": 1, "failed": 1, "ok": CELLS + 1}


def test_parent_sigkill_then_resume_is_bit_identical(
        tmp_path, uninterrupted):
    root = tmp_path / "killed"
    store = CampaignStore(root)

    # start the campaign through the real CLI, then SIGKILL the parent
    # orchestrator once some — but not all — cells are journaled
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", *_run_args(root)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=_env(),
    )
    try:
        deadline = time.monotonic() + 60
        total = CELLS + 3
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if 2 <= len(store.records()) < total - 2:
                os.kill(proc.pid, signal.SIGKILL)
                break
            time.sleep(0.005)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    assert proc.returncode == -signal.SIGKILL, \
        "campaign finished before the kill landed; raise CELLS or SLEEP_S"
    survivors = store.records()
    before = _journal_lines(store)
    assert 0 < len(survivors) < total, "kill landed outside the run window"

    # resume through the CLI; completed cells must not re-execute
    _cli("resume", "--dir", str(root))
    after = _journal_lines(store)
    # append-only: every pre-kill line survives verbatim (a torn final
    # line is sealed in place, never merged into new records)
    assert after[:len(before)] == before
    parsed = [json.loads(ln) for ln in after if _parses(ln)]
    ids = [r["cell_id"] for r in parsed]
    assert len(ids) == len(set(ids)), \
        "a journaled cell was re-executed after resume"
    final = store.records()
    for cell_id, rec in survivors.items():
        assert final[cell_id] == rec

    # the resumed campaign's aggregate is bit-identical to the
    # uninterrupted baseline
    resumed = aggregate_store(store)
    assert json.dumps(resumed, sort_keys=True) \
        == json.dumps(uninterrupted, sort_keys=True)

    # and a second resume is a pure no-op
    out = _cli("resume", "--dir", str(root)).stdout
    assert f"{CELLS + 3} cached" in out


def test_status_and_report_cli(tmp_path, uninterrupted):
    root = tmp_path / "c"
    _cli(*_run_args(root))
    out = _cli("status", "--dir", str(root)).stdout
    assert "ok" in out and str(CELLS + 1) in out
    report = _cli("report", "--dir", str(root),
                  "--out", str(tmp_path / "report.json")).stdout
    assert "campaign" in report
    doc = json.loads((tmp_path / "report.json").read_text())
    assert json.dumps(doc, sort_keys=True) \
        == json.dumps(uninterrupted, sort_keys=True)


def _parses(line):
    try:
        json.loads(line)
        return True
    except ValueError:
        return False
