"""Integration: the paper workload proxies, native and under MANA,
including checkpoint/restart mid-run."""

import pytest

from repro.apps.dft_proxy import DftConfig, DftProxy
from repro.apps.md_proxy import MdConfig, MdProxy
from repro.apps.workloads import TABLE_I, workload
from repro.errors import UnsupportedMpiFeature
from repro.hosts import CORI_HASWELL, CORI_KNL, TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan, run_app_native


def md_factory(nranks, steps=12, machine=TESTBOX, **kw):
    cfg = MdConfig(nranks=nranks, steps=steps, **kw)
    return lambda r: MdProxy(r, cfg, machine)


def dft_factory(nranks, name="CaPOH", iterations=3, machine=TESTBOX, **kw):
    cfg = DftConfig(nranks=nranks, workload=workload(name),
                    iterations=iterations, **kw)
    return lambda r: DftProxy(r, cfg, machine)


class TestMdProxy:
    def test_native_run_completes_deterministically(self):
        f = md_factory(8)
        a = run_app_native(8, f, TESTBOX)
        b = run_app_native(8, f, TESTBOX)
        assert a.results == b.results
        assert a.elapsed == b.elapsed
        assert a.total_pt2pt_calls > a.total_collective_calls  # GROMACS-like

    def test_neighbors_are_symmetric(self):
        cfg = MdConfig(nranks=8, steps=1)
        proxies = [MdProxy(r, cfg, TESTBOX) for r in range(8)]
        for r, p in enumerate(proxies):
            for nb in p.neighbors():
                assert r in proxies[nb].neighbors()

    def test_mana_matches_native(self):
        f = md_factory(8)
        native = run_app_native(8, f, TESTBOX)
        mana = ManaSession(8, f, TESTBOX, ManaConfig.feature_2pc()).run()
        assert mana.results == native.results
        assert mana.elapsed > native.elapsed

    def test_checkpoint_restart_preserves_trajectory(self):
        f = md_factory(8, steps=20, reduce_every=5)
        base = ManaSession(8, f, TESTBOX, ManaConfig.feature_2pc()).run()
        ck = ManaSession(8, f, TESTBOX, ManaConfig.feature_2pc()).run(
            checkpoints=[CheckpointPlan(at=base.elapsed * 0.5, action="restart")]
        )
        assert ck.results == base.results

    def test_overhead_grows_with_scale_on_haswell(self):
        """The Figure 2 mechanism: strong scaling shrinks compute while
        per-call interposition cost stays, so the MANA/native ratio
        grows with rank count."""
        ratios = []
        for nranks in (8, 32):
            f = md_factory(nranks, steps=6, machine=CORI_HASWELL)
            native = run_app_native(nranks, f, CORI_HASWELL)
            mana = ManaSession(
                nranks, f, CORI_HASWELL, ManaConfig.master()
            ).run()
            ratios.append(mana.elapsed / native.elapsed)
        assert ratios[1] > ratios[0] > 1.0


class TestDftProxy:
    def test_native_completes_with_heavy_collectives(self):
        f = dft_factory(8)
        out = run_app_native(8, f, TESTBOX)
        assert out.total_collective_calls > out.total_pt2pt_calls  # VASP-like
        checksum, residuals = out.results[0]
        assert len(residuals) == 3
        assert all(r[1] == residuals for r in out.results)

    @pytest.mark.parametrize("name", [w.name for w in TABLE_I])
    def test_all_table1_workloads_run_natively(self, name):
        f = dft_factory(4, name=name, iterations=2)
        out = run_app_native(4, f, TESTBOX)
        assert len(out.results) == 4

    def test_mana_checkpoint_restart_all_algo_paths(self):
        # one representative per algorithm family
        for name in ("PdO4", "CaPOH", "Si256_hse", "GaAs-GW0"):
            f = dft_factory(4, name=name, iterations=3)
            base = ManaSession(4, f, TESTBOX, ManaConfig.feature_2pc()).run()
            ck = ManaSession(4, f, TESTBOX, ManaConfig.feature_2pc()).run(
                checkpoints=[
                    CheckpointPlan(at=base.elapsed * 0.5, action="restart")
                ]
            )
            assert ck.results == base.results, name

    def test_vasp6_with_mpi_win_fails_cleanly(self):
        f = dft_factory(4, vasp6=True, use_mpi_win=True)
        with pytest.raises(UnsupportedMpiFeature, match="MPI_Win"):
            ManaSession(4, f, TESTBOX, ManaConfig.feature_2pc()).run()

    def test_vasp6_without_mpi_win_checkpoints(self):
        f = dft_factory(4, vasp6=True, use_mpi_win=False)
        base = ManaSession(4, f, TESTBOX, ManaConfig.feature_2pc()).run()
        ck = ManaSession(4, f, TESTBOX, ManaConfig.feature_2pc()).run(
            checkpoints=[CheckpointPlan(at=base.elapsed * 0.4, action="restart")]
        )
        assert ck.results == base.results

    def test_knl_native_slower_than_haswell(self):
        f_h = dft_factory(8, machine=CORI_HASWELL)
        f_k = dft_factory(8, machine=CORI_KNL)
        h = run_app_native(8, f_h, CORI_HASWELL)
        k = run_app_native(8, f_k, CORI_KNL)
        assert k.elapsed > h.elapsed * 1.5


class TestIonicRelaxation:
    """VASP's atomic-relaxation outer loop (IBRION) around SCF — the
    mode the paper notes is covered by VASP's own C/R, reproduced here
    so MANA's coverage can be compared on the same footing."""

    def test_relaxation_runs_and_differs_from_single_point(self):
        w = workload("WOSiH")
        single = DftConfig(nranks=4, workload=w, iterations=2, ionic_steps=1)
        relaxed = DftConfig(nranks=4, workload=w, iterations=2, ionic_steps=3)
        out1 = run_app_native(4, lambda r: DftProxy(r, single, TESTBOX), TESTBOX)
        out3 = run_app_native(4, lambda r: DftProxy(r, relaxed, TESTBOX), TESTBOX)
        _c1, res1 = out1.results[0]
        _c3, res3 = out3.results[0]
        assert len(res3) == 3 * len(res1)

    def test_relaxation_checkpoint_restart_mid_ionic_step(self):
        w = workload("WOSiH")
        cfg = DftConfig(nranks=4, workload=w, iterations=2, ionic_steps=3)
        factory = lambda r: DftProxy(r, cfg, TESTBOX)
        mana = ManaConfig.feature_2pc()
        base = ManaSession(4, factory, TESTBOX, mana).run()
        ck = ManaSession(4, factory, TESTBOX, mana).run(
            checkpoints=[CheckpointPlan(at=base.elapsed * 0.55,
                                        action="restart")]
        )
        assert ck.results == base.results


class TestPmeMode:
    """GROMACS' PME path: periodic FFT-transpose alltoalls on top of the
    halo exchange — a mixed pt2pt + collective signature."""

    def test_pme_adds_alltoalls(self):
        plain = run_app_native(8, md_factory(8, steps=8), TESTBOX)
        f = md_factory(8, steps=8, pme_every=2)
        pme = run_app_native(8, f, TESTBOX)
        assert pme.lib_calls.get("alltoall", 0) > plain.lib_calls.get("alltoall", 0)

    def test_pme_checkpoint_restart(self):
        f = md_factory(8, steps=16, pme_every=4)
        base = ManaSession(8, f, TESTBOX, ManaConfig.feature_2pc()).run()
        ck = ManaSession(8, f, TESTBOX, ManaConfig.feature_2pc()).run(
            checkpoints=[CheckpointPlan(at=base.elapsed * 0.5,
                                        action="restart")]
        )
        assert ck.results == base.results
