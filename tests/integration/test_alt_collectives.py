"""Integration: the Section III-E alternative (point-to-point)
collective implementations, one by one, against native results —
including checkpoints landing inside them."""

import numpy as np
import pytest

from repro.apps.base import MpiProgram
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.config import CollectiveMode
from repro.mana.session import CheckpointPlan, run_app_native
from repro.simmpi.ops import MAX, SUM
from repro.simmpi.ops import ReductionOp

ALT = ManaConfig.feature_2pc().but(collective_mode=CollectiveMode.PT2PT_ALWAYS)


class OneOfEach(MpiProgram):
    """Every collective the alternative implementation provides."""

    def main(self, api):
        me, p = api.rank, api.size
        out = {}
        yield from api.barrier()
        out["bcast"] = yield from api.bcast(
            ("root-data",) if me == 1 % p else None, root=1 % p
        )
        out["reduce"] = yield from api.reduce(me + 1, SUM, root=0)
        out["allreduce"] = yield from api.allreduce(
            np.full(4, float(me)), SUM
        )
        out["gather"] = yield from api.gather(me * 2, root=0)
        out["scatter"] = yield from api.scatter(
            [f"item{j}" for j in range(p)] if me == 0 else None, root=0
        )
        out["allgather"] = yield from api.allgather(me * me)
        out["alltoall"] = yield from api.alltoall(
            [(me, j) for j in range(p)]
        )
        out["scan"] = yield from api.scan(me + 1, SUM)
        out["reduce_scatter"] = yield from api.reduce_scatter_block(
            [np.array([me + j]) for j in range(p)], SUM
        )
        concat = ReductionOp("CONCAT", lambda a, b: a + b, commutative=False)
        out["noncommutative"] = yield from api.allreduce([me], concat)
        # normalize numpy results for comparison
        out["allreduce"] = tuple(out["allreduce"])
        out["reduce_scatter"] = tuple(out["reduce_scatter"])
        return out


def normalize(results):
    return results


@pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
def test_alt_collectives_match_native(p):
    factory = lambda r: OneOfEach(r)
    native = run_app_native(p, factory, TESTBOX)
    alt = ManaSession(p, factory, TESTBOX, ALT).run()
    assert normalize(alt.results) == normalize(native.results)


@pytest.mark.parametrize("frac", [0.1, 0.4, 0.7])
def test_alt_collectives_with_restart_mid_program(frac):
    p = 4
    factory = lambda r: OneOfEach(r)
    base = ManaSession(p, factory, TESTBOX, ALT).run()
    out = ManaSession(p, factory, TESTBOX, ALT).run(
        checkpoints=[CheckpointPlan(at=base.elapsed * frac, action="restart")]
    )
    assert out.results == base.results


def test_alt_mode_never_enters_lower_half_collectives():
    p = 4
    factory = lambda r: OneOfEach(r)
    session = ManaSession(p, factory, TESTBOX, ALT)
    out = session.run()
    # only the finalize barrier's world traffic plus comm mgmt can touch
    # the lower-half collective machinery; data collectives must not
    lib_calls = out.lib_calls
    for op in ("bcast", "reduce", "allreduce", "gather", "scatter",
               "allgather", "alltoall", "scan"):
        # the only lib-level collective calls allowed are those issued by
        # MANA itself (the drain's alltoall is on the internal comm; no
        # checkpoint here, so none at all)
        assert lib_calls.get(op, 0) <= (1 if op == "barrier" else 0), op
