"""Integration: session-level features — interval checkpointing
(DMTCP's -i) and compressed images (DMTCP's --gzip)."""

from repro.apps.micro import TokenRing
from repro.apps.md_proxy import MdConfig, MdProxy
from repro.hosts import TESTBOX
from repro.mana import ManaConfig, ManaSession
from repro.mana.session import CheckpointPlan


def test_interval_checkpointing_runs_until_program_ends():
    factory = lambda r: TokenRing(r, laps=10, compute_s=2e-3)
    base = ManaSession(3, factory, TESTBOX, ManaConfig.feature_2pc()).run()
    session = ManaSession(3, factory, TESTBOX, ManaConfig.feature_2pc())
    out = session.run(checkpoint_interval=base.elapsed / 4,
                      interval_action="restart")
    assert out.results == base.results
    done = [r for r in session.coordinator.records if not r.get("skipped")]
    assert len(done) >= 2           # several periodic checkpoints happened
    assert len(out.restarts) == len(done)


def test_interval_checkpointing_stops_gracefully_after_end():
    factory = lambda r: TokenRing(r, laps=3, compute_s=1e-3)
    session = ManaSession(3, factory, TESTBOX, ManaConfig.feature_2pc())
    # interval longer than the whole run: the first request lands after
    # the computation ended and is skipped; the loop stops
    out = session.run(checkpoint_interval=10.0)
    assert out.results == [TokenRing.expected(r, 3, 3) for r in range(3)]


def test_compressed_images_smaller_and_correct():
    md = MdConfig(nranks=4, steps=16)
    factory = lambda r: MdProxy(r, md, TESTBOX)
    base = ManaSession(4, factory, TESTBOX, ManaConfig.feature_2pc()).run()
    plan = [CheckpointPlan(at=base.elapsed * 0.5, action="restart")]

    plain = ManaSession(4, factory, TESTBOX, ManaConfig.feature_2pc())
    out_plain = plain.run(checkpoints=plan)
    gz_cfg = ManaConfig.feature_2pc().but(compress_images=True)
    gz = ManaSession(4, factory, TESTBOX, gz_cfg)
    out_gz = gz.run(checkpoints=plan)

    assert out_plain.results == out_gz.results == base.results
    assert sum(out_gz.image_bytes) < sum(out_plain.image_bytes)
    # compression trades image size for serialization CPU: checkpoint
    # (write) time shrinks because the burst-buffer write dominates
    assert (out_gz.checkpoints[0]["image_bytes_total"]
            < out_plain.checkpoints[0]["image_bytes_total"])


def test_compressed_image_file_roundtrip(tmp_path):
    from repro.mana.session import HALTED, resume_from_checkpoint

    cfg = ManaConfig.feature_2pc().but(compress_images=True,
                                       record_replay=True)
    factory = lambda r: TokenRing(r, laps=8, compute_s=2e-3)
    base = ManaSession(3, factory, TESTBOX, cfg).run()
    halted = ManaSession(3, factory, TESTBOX, cfg)
    out = halted.run(checkpoints=[
        CheckpointPlan(at=base.elapsed * 0.5, action="halt")
    ])
    assert out.results == [HALTED] * 3
    path = tmp_path / "gz.img"
    halted.save_checkpoint(path)
    resumed = resume_from_checkpoint(path, factory, TESTBOX, cfg).run()
    assert resumed.results == base.results
